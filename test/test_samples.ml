(* The shipped sample Verilog designs: parse from source, verify against the
   serial oracle, and exercise the JSON report writer. *)
open Rtlir
open Faultsim
module H = Harness

let check = Alcotest.check
let bool_t = Alcotest.bool

(* dune runtest runs in the test directory, dune exec in the project root:
   try both spellings *)
let candidates name =
  [
    Filename.concat "../examples/sample_designs" name;
    Filename.concat "examples/sample_designs" name;
  ]

let load name =
  let path =
    match List.find_opt Sys.file_exists (candidates name) with
    | Some p -> p
    | None -> Alcotest.failf "sample %s not found" name
  in
  let ic = open_in path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Verilog_parser.parse src

let campaign_case file =
  Alcotest.test_case (file ^ " campaign") `Quick (fun () ->
      let design = load file in
      let g = Elaborate.build design in
      let w =
        Circuits.Bench_circuit.random_workload ~seed:9L design ~cycles:400
      in
      let faults = Fault.generate ~max_faults:80 ~seed:2L design in
      let oracle = Baselines.Serial.ifsim g w faults in
      let r = Engine.Concurrent.run g w faults in
      check bool_t "matches oracle" true (Fault.same_verdict oracle r);
      check bool_t "detects something" true (Fault.count_detected r > 0))

let test_json () =
  let design = load "gray_counter.v" in
  let g = Elaborate.build design in
  let w = Circuits.Bench_circuit.random_workload ~seed:9L design ~cycles:200 in
  let faults = Fault.generate ~max_faults:30 ~seed:2L design in
  let verdicts = Classify.classify g faults in
  let r = Engine.Concurrent.run g w faults in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.campaign ppf ~design ~engine:"Eraser" ~faults ~verdicts r;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  (* structural sanity: balanced braces/brackets, expected keys, one record
     per fault *)
  let count c = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 text in
  check Alcotest.int "balanced braces" (count '{') (count '}');
  check Alcotest.int "balanced brackets" (count '[') (count ']');
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec scan i =
      i + nl <= hl && (String.sub text i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun k -> check bool_t k true (contains k))
    [
      "\"design\": \"gray_counter\""; "\"coverage_pct\""; "\"fault_list\"";
      "\"stuck-at-"; "\"class\"";
    ];
  (* and the report must actually parse as JSON, with one fault_list
     record per fault and the per-process skip table present *)
  let doc =
    try H.Jsonl.parse text
    with H.Jsonl.Parse_error m -> Alcotest.failf "unparseable report: %s" m
  in
  check Alcotest.int "one record per fault" (Array.length faults)
    (List.length (H.Jsonl.get_list "fault_list" doc));
  check bool_t "per_proc table present" true
    (H.Jsonl.get_list "per_proc" doc <> [])

let suite =
  List.map campaign_case
    [ "gray_counter.v"; "traffic_fsm.v"; "lfsr_checksum.v" ]
  @ [ Alcotest.test_case "json report" `Quick test_json ]
