(* Bit-vector kernel: unit cases plus qcheck algebraic properties checked
   against Int64 / arbitrary-precision oracles. *)
open Rtlir

let check = Alcotest.check
let int64_t = Alcotest.int64
let bool_t = Alcotest.bool

let test_make_masks () =
  check int64_t "mask 8" 0x34L (Bits.to_int64 (Bits.make 8 0x1234L));
  check int64_t "mask 1" 1L (Bits.to_int64 (Bits.make 1 3L));
  check int64_t "mask 64" (-1L) (Bits.to_int64 (Bits.make 64 (-1L)));
  check bool_t "width range low"
    true
    (try
       ignore (Bits.make 0 0L);
       false
     with Bits.Width_error _ -> true);
  check bool_t "width range high"
    true
    (try
       ignore (Bits.make 65 0L);
       false
     with Bits.Width_error _ -> true)

let test_signed () =
  check int64_t "to_signed neg" (-1L) (Bits.to_signed (Bits.make 4 0xFL));
  check int64_t "to_signed pos" 7L (Bits.to_signed (Bits.make 4 7L));
  check int64_t "to_signed w64" (-1L) (Bits.to_signed (Bits.make 64 (-1L)))

let test_force_bit () =
  let b = Bits.make 8 0b1010L in
  check int64_t "force set" 0b1011L (Bits.to_int64 (Bits.force_bit b 0 true));
  check int64_t "force clear" 0b0010L (Bits.to_int64 (Bits.force_bit b 3 false));
  check int64_t "force idempotent" 0b1010L
    (Bits.to_int64 (Bits.force_bit b 1 true));
  check bool_t "force out of range"
    true
    (try
       ignore (Bits.force_bit b 8 true);
       false
     with Bits.Width_error _ -> true)

let test_shifts () =
  let a = Bits.make 8 0x96L in
  check int64_t "shl" 0x60L
    (Bits.to_int64 (Bits.shift_left a (Bits.of_int 4 4)));
  check int64_t "shr" 0x09L
    (Bits.to_int64 (Bits.shift_right a (Bits.of_int 4 4)));
  check int64_t "sar" 0xF9L
    (Bits.to_int64 (Bits.shift_right_arith a (Bits.of_int 4 4)));
  check int64_t "shift saturates" 0L
    (Bits.to_int64 (Bits.shift_left a (Bits.of_int 8 200)));
  check int64_t "sar saturates" 0xFFL
    (Bits.to_int64 (Bits.shift_right_arith a (Bits.of_int 8 200)))

let test_division () =
  let a = Bits.make 8 0xC8L and z = Bits.make 8 0L in
  check int64_t "div by zero is all ones" 0xFFL
    (Bits.to_int64 (Bits.divu a z));
  check int64_t "mod by zero is lhs" 0xC8L (Bits.to_int64 (Bits.modu a z));
  check int64_t "divu" 3L
    (Bits.to_int64 (Bits.divu a (Bits.make 8 60L)))

let test_concat_slice () =
  let hi = Bits.make 4 0xAL and lo = Bits.make 8 0x5CL in
  let c = Bits.concat hi lo in
  check int64_t "concat" 0xA5CL (Bits.to_int64 c);
  check int64_t "slice hi" 0xAL (Bits.to_int64 (Bits.slice c ~hi:11 ~lo:8));
  check int64_t "slice lo" 0x5CL (Bits.to_int64 (Bits.slice c ~hi:7 ~lo:0));
  check bool_t "concat over 64"
    true
    (try
       ignore (Bits.concat (Bits.make 33 0L) (Bits.make 32 0L));
       false
     with Bits.Width_error _ -> true)

let test_reductions () =
  check bool_t "reduce_and ones" true
    (Bits.is_true (Bits.reduce_and (Bits.make 5 0x1FL)));
  check bool_t "reduce_and not" false
    (Bits.is_true (Bits.reduce_and (Bits.make 5 0x1EL)));
  check bool_t "reduce_or zero" false
    (Bits.is_true (Bits.reduce_or (Bits.make 5 0L)));
  check bool_t "reduce_xor odd" true
    (Bits.is_true (Bits.reduce_xor (Bits.make 8 0x7L)));
  check bool_t "reduce_xor even" false
    (Bits.is_true (Bits.reduce_xor (Bits.make 8 0x5L)))

(* --- qcheck properties --- *)

let gen_width = QCheck2.Gen.int_range 1 64

let gen_bits =
  QCheck2.Gen.map2
    (fun w v -> Bits.make w v)
    gen_width
    (QCheck2.Gen.map Int64.of_int QCheck2.Gen.int)

let gen_pair =
  QCheck2.Gen.map3
    (fun w a b -> (Bits.make w a, Bits.make w b))
    gen_width
    (QCheck2.Gen.map Int64.of_int QCheck2.Gen.int)
    (QCheck2.Gen.map Int64.of_int QCheck2.Gen.int)

let prop name gen f = QCheck2.Test.make ~count:500 ~name gen f

let qcheck_suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop "add_comm" gen_pair (fun (a, b) ->
          Bits.equal (Bits.add a b) (Bits.add b a));
      prop "add_sub_roundtrip" gen_pair (fun (a, b) ->
          Bits.equal a (Bits.sub (Bits.add a b) b));
      prop "neg_is_sub_zero" gen_bits (fun a ->
          Bits.equal (Bits.neg a) (Bits.sub (Bits.zero (Bits.width a)) a));
      prop "not_involutive" gen_bits (fun a ->
          Bits.equal a (Bits.lognot (Bits.lognot a)));
      prop "de_morgan" gen_pair (fun (a, b) ->
          Bits.equal
            (Bits.lognot (Bits.logand a b))
            (Bits.logor (Bits.lognot a) (Bits.lognot b)));
      prop "xor_self_zero" gen_bits (fun a ->
          Bits.equal (Bits.logxor a a) (Bits.zero (Bits.width a)));
      prop "ltu_total_order" gen_pair (fun (a, b) ->
          let lt = Bits.is_true (Bits.ltu a b) in
          let gt = Bits.is_true (Bits.gtu a b) in
          let eq = Bits.equal a b in
          List.length (List.filter (fun x -> x) [ lt; gt; eq ]) = 1);
      prop "lts_matches_int64" gen_pair (fun (a, b) ->
          Bits.is_true (Bits.lts a b)
          = (Int64.compare (Bits.to_signed a) (Bits.to_signed b) < 0));
      prop "slice_concat_roundtrip" gen_pair (fun (a, b) ->
          let w = Bits.width a in
          if 2 * w > 64 then true
          else begin
            let c = Bits.concat a b in
            Bits.equal a (Bits.slice c ~hi:((2 * w) - 1) ~lo:w)
            && Bits.equal b (Bits.slice c ~hi:(w - 1) ~lo:0)
          end);
      prop "sext_preserves_signed" gen_bits (fun a ->
          let w = Bits.width a in
          if w > 32 then true
          else Int64.equal (Bits.to_signed (Bits.sext a 64)) (Bits.to_signed a));
      prop "zext_preserves_unsigned" gen_bits (fun a ->
          let w = Bits.width a in
          if w >= 64 then true
          else Int64.equal (Bits.to_int64 (Bits.zext a 64)) (Bits.to_int64 a));
      prop "force_bit_reads_back" gen_bits (fun a ->
          let w = Bits.width a in
          let i = (Int64.to_int (Bits.to_int64 a) land max_int) mod w in
          Bits.bit (Bits.force_bit a i true) i
          && not (Bits.bit (Bits.force_bit a i false) i));
      prop "shift_left_mul" gen_bits (fun a ->
          (* a << 1 = a + a *)
          Bits.equal
            (Bits.shift_left a (Bits.of_int 7 1))
            (Bits.add a a));
      prop "mul_matches_int64" gen_pair (fun (a, b) ->
          Int64.equal
            (Bits.to_int64 (Bits.mul a b))
            (Int64.logand
               (Int64.mul (Bits.to_int64 a) (Bits.to_int64 b))
               (Bits.to_int64 (Bits.ones (Bits.width a)))));
      (* Representation pins: these properties fix the 2-state semantics the
         unboxed value layer must reproduce bit-for-bit. *)
      prop "mask_roundtrip" (QCheck2.Gen.pair gen_width (QCheck2.Gen.map Int64.of_int QCheck2.Gen.int))
        (fun (w, v) ->
          let m =
            if w = 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L
          in
          Int64.equal (Bits.to_int64 (Bits.make w v)) (Int64.logand v m));
      prop "make_is_idempotent" gen_bits (fun a ->
          Bits.equal a (Bits.make (Bits.width a) (Bits.to_int64 a)));
      prop "add_matches_int64" gen_pair (fun (a, b) ->
          Bits.equal (Bits.add a b)
            (Bits.make (Bits.width a)
               (Int64.add (Bits.to_int64 a) (Bits.to_int64 b))));
      prop "sub_matches_int64" gen_pair (fun (a, b) ->
          Bits.equal (Bits.sub a b)
            (Bits.make (Bits.width a)
               (Int64.sub (Bits.to_int64 a) (Bits.to_int64 b))));
      prop "signed_add_identity" gen_pair (fun (a, b) ->
          (* two's complement: signed and unsigned addition coincide under
             the width mask *)
          Bits.equal (Bits.add a b)
            (Bits.make (Bits.width a)
               (Int64.add (Bits.to_signed a) (Bits.to_signed b))));
      prop "neg_signed_negates" gen_bits (fun a ->
          Bits.equal (Bits.neg a)
            (Bits.make (Bits.width a) (Int64.neg (Bits.to_signed a))));
      prop "to_signed_roundtrip" gen_bits (fun a ->
          Bits.equal a (Bits.make (Bits.width a) (Bits.to_signed a)));
      prop "divu_by_zero_all_ones" gen_bits (fun a ->
          Bits.equal
            (Bits.divu a (Bits.zero (Bits.width a)))
            (Bits.ones (Bits.width a)));
      prop "modu_by_zero_is_lhs" gen_bits (fun a ->
          Bits.equal (Bits.modu a (Bits.zero (Bits.width a))) a);
      prop "divmod_roundtrip" gen_pair (fun (a, b) ->
          (* a = (a / b) * b + (a mod b) for non-zero b *)
          if not (Bits.is_true b) then true
          else
            Bits.equal a
              (Bits.add (Bits.mul (Bits.divu a b) b) (Bits.modu a b)));
      prop "divu_matches_int64" gen_pair (fun (a, b) ->
          (not (Bits.is_true b))
          || Int64.equal
               (Bits.to_int64 (Bits.divu a b))
               (Int64.unsigned_div (Bits.to_int64 a) (Bits.to_int64 b)));
      prop "shru_then_shl_masks_low" gen_bits (fun a ->
          let w = Bits.width a in
          let one = Bits.of_int 7 1 in
          Bits.equal
            (Bits.shift_right (Bits.shift_left a one) one)
            (if w = 1 then Bits.zero 1
             else Bits.slice a ~hi:(w - 2) ~lo:0 |> fun s -> Bits.zext s w));
      prop "shra_matches_signed_int64" gen_bits (fun a ->
          let n = 3 in
          Bits.equal
            (Bits.shift_right_arith a (Bits.of_int 7 n))
            (Bits.make (Bits.width a)
               (Int64.shift_right (Bits.to_signed a) n)));
      prop "reduce_xor_is_parity" gen_bits (fun a ->
          let rec pop acc v =
            if Int64.equal v 0L then acc
            else pop (acc + 1) (Int64.logand v (Int64.sub v 1L))
          in
          Bits.is_true (Bits.reduce_xor a)
          = (pop 0 (Bits.to_int64 a) land 1 = 1));
      prop "eq_matches_equal" gen_pair (fun (a, b) ->
          Bits.is_true (Bits.eq a b) = Bits.equal a b);
      prop "leu_is_ltu_or_eq" gen_pair (fun (a, b) ->
          Bits.is_true (Bits.leu a b)
          = (Bits.is_true (Bits.ltu a b) || Bits.equal a b));
      prop "ges_is_not_lts" gen_pair (fun (a, b) ->
          Bits.is_true (Bits.ges a b) = not (Bits.is_true (Bits.lts a b)));
    ]

let suite =
  [
    Alcotest.test_case "make masks" `Quick test_make_masks;
    Alcotest.test_case "signed interpretation" `Quick test_signed;
    Alcotest.test_case "force_bit" `Quick test_force_bit;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "division conventions" `Quick test_division;
    Alcotest.test_case "concat/slice" `Quick test_concat_slice;
    Alcotest.test_case "reductions" `Quick test_reductions;
  ]
  @ qcheck_suite
