(* Single-network simulator: settle semantics, edge handling, derived
   clocks, stuck-at forcing, and agreement across all scheduler/evaluator
   configurations. *)
open Rtlir
open Sim
module B = Builder
open B.Ops

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let peek_int sim id = Int64.to_int (Bits.to_int64 (Simulator.peek sim id))

let counter_design () =
  let ctx = B.create "counter" in
  let clk = B.input ctx "clk" 1 in
  let en = B.input ctx "en" 1 in
  let q = B.reg ctx "q" 8 in
  let nxt = B.wire ctx "nxt" 8 in
  B.assign ctx nxt (q +: B.const 8 1);
  B.always_ff ctx ~clock:clk [ B.when_ en [ q <-- nxt ] ];
  let o = B.output ctx "o" 8 in
  B.assign ctx o q;
  B.finalize ctx

let tick sim clk =
  Simulator.set_input sim clk (Bits.one 1);
  Simulator.step sim;
  Simulator.set_input sim clk (Bits.zero 1);
  Simulator.step sim

let test_counter () =
  let d = counter_design () in
  let g = Elaborate.build d in
  let sim = Simulator.create g in
  let clk = Design.find_signal d "clk" in
  let en = Design.find_signal d "en" in
  let o = Design.find_signal d "o" in
  Simulator.set_input sim en (Bits.one 1);
  for _ = 1 to 5 do
    tick sim clk
  done;
  check int_t "counted 5" 5 (peek_int sim o);
  Simulator.set_input sim en (Bits.zero 1);
  tick sim clk;
  check int_t "enable gates" 5 (peek_int sim o);
  (* no posedge, no count: raising and lowering without a posedge *)
  Simulator.set_input sim en (Bits.one 1);
  Simulator.step sim;
  Simulator.step sim;
  check int_t "no edge no count" 5 (peek_int sim o)

let test_negedge () =
  let ctx = B.create "neg" in
  let clk = B.input ctx "clk" 1 in
  let q = B.reg ctx "q" 4 in
  B.always_ff ctx ~edge:Design.Negedge ~clock:clk [ q <-- (q +: B.const 4 1) ];
  let o = B.output ctx "o" 4 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let sim = Simulator.create (Elaborate.build d) in
  let clk_id = Design.find_signal d "clk" in
  let o_id = Design.find_signal d "o" in
  tick sim clk_id;
  (* one full cycle = one negedge *)
  check int_t "negedge counted" 1 (peek_int sim o_id)

let test_derived_clock () =
  (* a divided clock from a register drives a second domain within the same
     time slot cascade *)
  let ctx = B.create "divclk" in
  let clk = B.input ctx "clk" 1 in
  let div = B.reg ctx "div" 1 in
  B.always_ff ctx ~clock:clk [ div <-- ~:div ];
  let divw = B.wire ctx "divw" 1 in
  B.assign ctx divw div;
  let q = B.reg ctx "q" 8 in
  B.always_ff ctx ~clock:divw [ q <-- (q +: B.const 8 1) ];
  let o = B.output ctx "o" 8 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let sim = Simulator.create (Elaborate.build d) in
  let clk_id = Design.find_signal d "clk" in
  for _ = 1 to 8 do
    tick sim clk_id
  done;
  (* div toggles per posedge: 8 posedges -> 4 rising edges of div *)
  check int_t "derived clock" 4 (peek_int sim (Design.find_signal d "o"))

let test_force () =
  let d = counter_design () in
  let g = Elaborate.build d in
  let q = Design.find_signal d "q" in
  let sim = Simulator.create ~force:(q, 0, false) g in
  let clk = Design.find_signal d "clk" in
  let en = Design.find_signal d "en" in
  Simulator.set_input sim en (Bits.one 1);
  for _ = 1 to 4 do
    tick sim clk
  done;
  (* bit 0 of q stuck at 0: q goes 0 -> 0|1=0... increments with bit0
     cleared each write: 0,0( from 1),... sequence: q=0; q+1=1 forced->0;
     stays 0 forever *)
  check int_t "stuck counter" 0 (peek_int sim (Design.find_signal d "o"))

let test_all_configs_agree () =
  let styles = [ Simulator.Closures; Simulator.Ast; Simulator.Bytecode ] in
  let scheds = [ Simulator.Levelized; Simulator.Fifo; Simulator.Cycle_based ] in
  let reprs = [ Simulator.Boxed; Simulator.Flat ] in
  for seed = 1 to 25 do
    let s = Harness.Rand_design.generate ~seed:(Int64.of_int (4000 + seed)) () in
    let g = s.Harness.Rand_design.graph in
    let w = s.Harness.Rand_design.workload in
    let trace config =
      Baselines.Serial.golden_trace ~config g { w with cycles = 60 }
    in
    let base = trace Simulator.default_config in
    List.iter
      (fun eval ->
        List.iter
          (fun scheduler ->
            List.iter
              (fun repr ->
                let t = trace { Simulator.eval; scheduler; repr } in
                if t <> base then
                  Alcotest.failf "seed %d: config disagrees" seed)
              reprs)
          scheds)
      styles
  done

let test_proc_executions_counted () =
  let d = counter_design () in
  let sim = Simulator.create (Elaborate.build d) in
  let clk = Design.find_signal d "clk" in
  let en = Design.find_signal d "en" in
  Simulator.set_input sim en (Bits.one 1);
  let before = Simulator.proc_executions sim in
  tick sim clk;
  check bool_t "executions increase" true (Simulator.proc_executions sim > before)

let suite =
  [
    Alcotest.test_case "enabled counter" `Quick test_counter;
    Alcotest.test_case "negedge process" `Quick test_negedge;
    Alcotest.test_case "derived clock cascade" `Quick test_derived_clock;
    Alcotest.test_case "stuck-at force" `Quick test_force;
    Alcotest.test_case "all 9 configs agree" `Quick test_all_configs_agree;
    Alcotest.test_case "proc execution counter" `Quick
      test_proc_executions_counted;
  ]
