(* Fault model, workload protocol and result helpers. *)
open Rtlir
open Faultsim

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let small_design () =
  let module B = Builder in
  let ctx = B.create "tiny" in
  let _clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 3 in
  let w = B.wire ctx "w" 3 in
  B.assign ctx w a;
  let o = B.output ctx "o" 3 in
  B.assign ctx o w;
  B.finalize ctx

let test_generate_all () =
  let d = small_design () in
  let faults = Fault.generate ~seed:1L d in
  (* clk(1) + a(3) + w(3) + o(3) bits, SA0 and SA1 each *)
  check int_t "site count" 20 (Array.length faults);
  Array.iteri
    (fun i (f : Fault.t) -> check int_t "dense ids" i f.fid)
    faults;
  let no_inputs = Fault.generate ~include_inputs:false ~seed:1L d in
  check int_t "without inputs" 12 (Array.length no_inputs)

let test_generate_sampled () =
  let d = small_design () in
  let f1 = Fault.generate ~max_faults:7 ~seed:42L d in
  let f2 = Fault.generate ~max_faults:7 ~seed:42L d in
  let f3 = Fault.generate ~max_faults:7 ~seed:43L d in
  check int_t "sampled size" 7 (Array.length f1);
  check bool_t "deterministic" true (f1 = f2);
  check bool_t "seed dependent" true (f1 <> f3)

let test_force () =
  let f = { Fault.fid = 0; signal = 0; bit = 2; stuck = Fault.Stuck_at_1 } in
  check Alcotest.int64 "forces bit" 0b100L
    (Bits.to_int64 (Fault.force f (Bits.make 4 0L)));
  let f0 = { f with stuck = Fault.Stuck_at_0 } in
  check Alcotest.int64 "clears bit" 0b1011L
    (Bits.to_int64 (Fault.force f0 (Bits.make 4 0b1111L)))

let test_result_helpers () =
  let stats = Stats.create () in
  let r =
    Fault.make_result
      ~detected:[| true; false; true; true |]
      ~detection_cycle:[| 3; -1; 5; 10 |]
      ~stats ~wall_time:1.0 ()
  in
  check int_t "count" 3 (Fault.count_detected r);
  check (Alcotest.float 0.01) "coverage" 75.0 r.Fault.coverage_pct;
  let r2 =
    Fault.make_result
      ~detected:[| true; false; true; false |]
      ~stats ~wall_time:2.0 ()
  in
  check bool_t "same_verdict self" true (Fault.same_verdict r r);
  check bool_t "same_verdict differs" false (Fault.same_verdict r r2);
  check (Alcotest.float 0.01) "mean latency" 6.0
    (Fault.mean_detection_latency r)

let test_stats_accounting () =
  let s = Stats.create () in
  s.Stats.bn_fault_exec <- 10;
  s.Stats.bn_skipped_explicit <- 60;
  s.Stats.bn_skipped_implicit <- 30;
  check int_t "total" 100 (Stats.total_bn_executions s);
  check int_t "eliminated" 90 (Stats.eliminated s);
  check (Alcotest.float 0.01) "explicit pct" 60.0 (Stats.explicit_pct s);
  check (Alcotest.float 0.01) "implicit pct" 30.0 (Stats.implicit_pct s)

let row name exec impl expl =
  { Stats.pr_name = name; pr_exec = exec; pr_impl = impl; pr_expl = expl }

let rows_t =
  Alcotest.testable
    (fun ppf (r : Stats.proc_row) ->
      Format.fprintf ppf "%s:%d/%d/%d" r.Stats.pr_name r.pr_exec r.pr_impl
        r.pr_expl)
    ( = )

let test_stats_add_merges_per_proc () =
  (* the parallel merge must sum per-process rows by name, not append the
     tables (the old behaviour duplicated every process once per worker) *)
  let a = Stats.create () and b = Stats.create () in
  a.Stats.per_proc <- [| row "alu" 10 1 2; row "ctl" 3 0 0 |];
  b.Stats.per_proc <- [| row "alu" 5 1 0; row "ctl" 1 2 3 |];
  check (Alcotest.array rows_t) "same-order tables sum row by row"
    [| row "alu" 15 2 2; row "ctl" 4 2 3 |]
    (Stats.add a b).Stats.per_proc;
  (* keyed merge when the tables disagree on order or membership *)
  let c = Stats.create () and d = Stats.create () in
  c.Stats.per_proc <- [| row "alu" 1 0 0; row "ctl" 2 0 0 |];
  d.Stats.per_proc <- [| row "ctl" 10 0 0; row "mem" 4 0 0 |];
  check (Alcotest.array rows_t) "keyed merge keeps first-occurrence order"
    [| row "alu" 1 0 0; row "ctl" 12 0 0; row "mem" 4 0 0 |]
    (Stats.add c d).Stats.per_proc;
  (* merging from an empty accumulator copies, never aliases *)
  let e = Stats.add (Stats.create ()) d in
  d.Stats.per_proc.(0).Stats.pr_exec <- 999;
  check int_t "copied row unaffected by source mutation" 10
    e.Stats.per_proc.(0).Stats.pr_exec

let test_stats_add_time_semantics () =
  (* workers contribute CPU seconds (summed); the coordinator owns the wall
     clock (max, then overwritten) — summing wall times across workers was
     inflating the bn_time_pct denominator by the worker count *)
  let a = Stats.create () and b = Stats.create () in
  a.Stats.total_seconds <- 2.0;
  a.Stats.cpu_seconds <- 2.0;
  a.Stats.bn_seconds <- 1.0;
  b.Stats.total_seconds <- 3.0;
  b.Stats.cpu_seconds <- 3.0;
  b.Stats.bn_seconds <- 2.0;
  let m = Stats.add a b in
  check (Alcotest.float 1e-9) "cpu seconds sum" 5.0 m.Stats.cpu_seconds;
  check (Alcotest.float 1e-9) "wall time is the max, not the sum" 3.0
    m.Stats.total_seconds;
  check (Alcotest.float 1e-9) "bn seconds sum" 3.0 m.Stats.bn_seconds;
  (* pct uses the aggregate CPU denominator, so it stays a fraction of the
     work actually done rather than drifting with the worker count *)
  check (Alcotest.float 0.01) "bn time pct" 60.0 (Stats.bn_time_pct m)

let test_workload_protocol () =
  (* the protocol applies inputs, raises the clock, lowers it, observes *)
  let log = ref [] in
  let w =
    {
      Workload.cycles = 3;
      clock = 99;
      drive = (fun c -> [ (1, Bits.of_int 4 c) ]);
    }
  in
  Workload.run w
    ~set_input:(fun id v ->
      log := Printf.sprintf "set %d=%Ld" id (Bits.to_int64 v) :: !log)
    ~step:(fun () -> log := "step" :: !log)
    ~observe:(fun c ->
      log := Printf.sprintf "obs %d" c :: !log;
      c < 1);
  let got = List.rev !log in
  check (Alcotest.list Alcotest.string) "protocol"
    [
      "set 1=0"; "set 99=1"; "step"; "set 99=0"; "step"; "obs 0";
      "set 1=1"; "set 99=1"; "step"; "set 99=0"; "step"; "obs 1";
    ]
    got

let test_random_drive_deterministic () =
  let drive = Workload.random_drive ~seed:5L ~inputs:[ (0, 8); (1, 16) ] () in
  check bool_t "pure function of cycle" true (drive 3 = drive 3);
  check bool_t "varies by cycle" true (drive 3 <> drive 4);
  let directed = [| [ (0, Bits.make 8 7L) ] |] in
  let drive2 =
    Workload.random_drive ~seed:5L ~inputs:[ (0, 8) ] ~directed ()
  in
  check bool_t "directed prefix" true (drive2 0 = [ (0, Bits.make 8 7L) ])

let suite =
  [
    Alcotest.test_case "generate all sites" `Quick test_generate_all;
    Alcotest.test_case "generate sampled" `Quick test_generate_sampled;
    Alcotest.test_case "force" `Quick test_force;
    Alcotest.test_case "result helpers" `Quick test_result_helpers;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "stats merge keys per_proc by name" `Quick
      test_stats_add_merges_per_proc;
    Alcotest.test_case "stats merge time semantics" `Quick
      test_stats_add_time_semantics;
    Alcotest.test_case "workload protocol" `Quick test_workload_protocol;
    Alcotest.test_case "random drive deterministic" `Quick
      test_random_drive_deterministic;
  ]
