(* Observability layer: tracer rings and Chrome export, metrics registry,
   heartbeat pacing. The zero-allocation test is the contract that lets the
   instrumentation stay compiled into the engine's hot paths. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

module J = Harness.Jsonl

(* Every test owns the global tracer/metrics state: reset hard on entry so
   ordering between tests (or a traced test elsewhere) cannot leak. *)
let fresh () =
  Obs.Trace.disable ();
  Obs.Metrics.disable ();
  Obs.Metrics.reset ()

let parse_trace () =
  let doc = J.parse (Obs.Trace.to_chrome_string ()) in
  match J.member "traceEvents" doc with
  | Some (J.List l) -> l
  | _ -> Alcotest.fail "no traceEvents"

let test_span_nesting () =
  fresh ();
  Obs.Trace.enable ~capacity:1024 ();
  let outer = Obs.Trace.span_begin "outer" in
  let inner = Obs.Trace.span_begin "inner" in
  Obs.Trace.span_end "inner" inner;
  Obs.Trace.span_end "outer" outer;
  Obs.Trace.disable ();
  let events = parse_trace () in
  let find name =
    List.find (fun e -> J.get_string "name" e = name) events
  in
  let ts e = J.get_int "ts" e and dur e = J.get_int "dur" e in
  let o = find "outer" and i = find "inner" in
  check bool_t "outer starts first" true (ts o <= ts i);
  check bool_t "inner contained" true (ts i + dur i <= ts o + dur o);
  check bool_t "durations non-negative" true (dur o >= 0 && dur i >= 0);
  List.iter
    (fun e -> check Alcotest.string "phase" "X" (J.get_string "ph" e))
    events

let test_ring_wraparound () =
  fresh ();
  Obs.Trace.enable ~capacity:4 ();
  for i = 0 to 9 do
    Obs.Trace.instant (Printf.sprintf "ev%d" i)
  done;
  Obs.Trace.disable ();
  check int_t "ring keeps capacity events" 4 (Obs.Trace.event_count ());
  let names =
    List.map (fun e -> J.get_string "name" e) (parse_trace ())
    |> List.sort compare
  in
  check
    Alcotest.(list string)
    "last four survive" [ "ev6"; "ev7"; "ev8"; "ev9" ] names

let test_disabled_path_no_alloc () =
  fresh ();
  (* warm up the domain-local ring and any lazy state first *)
  Obs.Trace.enable ~capacity:16 ();
  Obs.Trace.instant "warmup";
  ignore (Obs.Metrics.on ());
  Obs.Trace.disable ();
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    let t0 = Obs.Trace.span_begin "hot" in
    Obs.Trace.span_end "hot" t0;
    Obs.Trace.instant "hot";
    Obs.Trace.counter "hot" 1.0;
    Obs.Metrics.add "hot" 1;
    Obs.Metrics.observe "hot" 1.0
  done;
  let after = Gc.minor_words () in
  check (Alcotest.float 0.0) "no minor allocation when disabled" 0.0
    (after -. before)

let test_chrome_export_shape () =
  fresh ();
  Obs.Trace.enable ~capacity:64 ();
  let t0 = Obs.Trace.span_begin "span \"quoted\"" in
  Obs.Trace.span_end "span \"quoted\"" t0;
  Obs.Trace.counter "ctr" 42.5;
  Obs.Trace.counter "bad" Float.nan;
  Obs.Trace.instant "mark";
  Obs.Trace.disable ();
  let doc = J.parse (Obs.Trace.to_chrome_string ()) in
  check Alcotest.string "display unit" "ms"
    (J.get_string "displayTimeUnit" doc);
  let events = parse_trace () in
  check int_t "all four events survive" 4 (List.length events);
  List.iter
    (fun e ->
      let ph = J.get_string "ph" e in
      check bool_t "known phase" true (List.mem ph [ "X"; "C"; "i" ]);
      check bool_t "ts present" true (J.get_int "ts" e >= 0);
      ignore (J.get_int "pid" e);
      ignore (J.get_int "tid" e);
      if ph = "C" && J.get_string "name" e = "bad" then
        (* the NaN sample must not become a bare nan token *)
        match J.member "args" e with
        | Some args -> check bool_t "nan exported as null" true
            (J.member "value" args = Some J.Null)
        | None -> Alcotest.fail "counter without args")
    events

let test_empty_trace_is_valid () =
  fresh ();
  Obs.Trace.enable ~capacity:8 ();
  Obs.Trace.disable ();
  check int_t "no events" 0 (List.length (parse_trace ()))

let test_metrics_counters () =
  fresh ();
  Obs.Metrics.enable ();
  Obs.Metrics.add "a" 2;
  Obs.Metrics.add "a" 3;
  Obs.Metrics.add "b" 1;
  check (Alcotest.option int_t) "a" (Some 5) (Obs.Metrics.counter_value "a");
  check (Alcotest.option int_t) "b" (Some 1) (Obs.Metrics.counter_value "b");
  check (Alcotest.option int_t) "absent" None (Obs.Metrics.counter_value "c");
  Obs.Metrics.disable ();
  Obs.Metrics.add "a" 100;
  check (Alcotest.option int_t) "disabled add ignored" (Some 5)
    (Obs.Metrics.counter_value "a")

let test_metrics_histogram () =
  fresh ();
  Obs.Metrics.enable ();
  List.iter (Obs.Metrics.observe "h") [ 1.0; 2.0; 3.0; 100.0 ];
  (match Obs.Metrics.histogram_stats "h" with
  | Some (count, sum, max) ->
      check int_t "count" 4 count;
      check (Alcotest.float 1e-9) "sum" 106.0 sum;
      check (Alcotest.float 1e-9) "max" 100.0 max
  | None -> Alcotest.fail "histogram not registered");
  (* local accumulation merges like direct observation *)
  let buckets = Array.make Obs.Metrics.nbuckets 0 in
  let bump v = buckets.(Obs.Metrics.bucket_of v) <- buckets.(Obs.Metrics.bucket_of v) + 1 in
  bump 1.0;
  bump 2.0;
  bump 3.0;
  bump 100.0;
  Obs.Metrics.merge_histogram "h2" buckets ~count:4 ~sum:106.0 ~max:100.0;
  check
    (Alcotest.option (Alcotest.triple int_t (Alcotest.float 1e-9) (Alcotest.float 1e-9)))
    "merged equals observed"
    (Obs.Metrics.histogram_stats "h")
    (Obs.Metrics.histogram_stats "h2")

let test_metrics_json () =
  fresh ();
  Obs.Metrics.enable ();
  Obs.Metrics.add "z.counter" 7;
  Obs.Metrics.observe "a.hist" 5.0;
  let doc = J.parse (Obs.Metrics.to_json_string ()) in
  let metrics =
    match J.member "metrics" doc with
    | Some (J.Obj kvs) -> kvs
    | _ -> Alcotest.fail "no metrics object"
  in
  check
    Alcotest.(list string)
    "names sorted" [ "a.hist"; "z.counter" ] (List.map fst metrics);
  let c = List.assoc "z.counter" metrics in
  check Alcotest.string "counter type" "counter" (J.get_string "type" c);
  check int_t "counter value" 7 (J.get_int "value" c);
  let h = List.assoc "a.hist" metrics in
  check Alcotest.string "hist type" "histogram" (J.get_string "type" h);
  check int_t "hist count" 1 (J.get_int "count" h);
  check int_t "one non-empty bucket" 1 (List.length (J.get_list "buckets" h))

let test_heartbeat () =
  let t = ref 0.0 in
  let hb = Obs.Heartbeat.create ~now:(fun () -> !t) ~interval:10.0 ~total:1000 () in
  (* inside the interval: silent *)
  t := 5.0;
  check bool_t "quiet before interval" true
    (Obs.Heartbeat.update hb ~done_:100 ~detected:50 = None);
  t := 10.0;
  (match Obs.Heartbeat.update hb ~done_:200 ~detected:80 with
  | None -> Alcotest.fail "tick expected at the interval"
  | Some tick ->
      check int_t "done" 200 tick.Obs.Heartbeat.hb_done;
      check (Alcotest.float 1e-9) "rate" 20.0 tick.Obs.Heartbeat.hb_rate;
      check (Alcotest.float 1e-9) "eta" 40.0 tick.Obs.Heartbeat.hb_eta_s;
      let line = Obs.Heartbeat.to_line hb tick in
      check bool_t "line mentions progress" true
        (String.length line > 0 && line.[0] = '[');
      let j = J.parse (Obs.Heartbeat.to_json hb tick) in
      check Alcotest.string "journal type" "heartbeat" (J.get_string "type" j);
      check int_t "journal done" 200 (J.get_int "done" j);
      check int_t "journal total" 1000 (J.get_int "total" j));
  (* the emission resets the pacing clock *)
  t := 15.0;
  check bool_t "quiet again after a tick" true
    (Obs.Heartbeat.update hb ~done_:300 ~detected:90 = None)

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_path_no_alloc;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "empty trace is valid JSON" `Quick
      test_empty_trace_is_valid;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics JSON export" `Quick test_metrics_json;
    Alcotest.test_case "heartbeat pacing" `Quick test_heartbeat;
  ]
