let () =
  Alcotest.run "eraser"
    [
      ("bits", Test_bits.suite);
      ("ir", Test_ir.suite);
      ("builder", Test_builder.suite);
      ("cfg-vdg", Test_cfg_vdg.suite);
      ("simulator", Test_simulator.suite);
      ("repr", Test_repr.suite);
      ("fault", Test_fault.suite);
      ("circuits", Test_circuits.suite);
      ("export", Test_export.suite);
      ("verilog-roundtrip", Test_verilog_roundtrip.suite);
      ("samples", Test_samples.suite);
      ("engines", Test_engines.suite);
      ("classify", Test_classify.suite);
      ("transient", Test_transient.suite);
      ("differential", Test_rand_diff.suite);
      ("resilient", Test_resilient.suite);
      ("ivec", Test_ivec.suite);
      ("pool", Test_pool.suite);
      ("chaos", Test_chaos.suite);
      ("obs", Test_obs.suite);
      ("report", Test_report.suite);
      ("warmstart", Test_warmstart.suite);
      ("activation", Test_activation.suite);
      ("schedule", Test_schedule.suite);
      ("lanes", Test_lanes.suite);
    ]
