(* Fault-schedule planner regression suite.

   The contract under test (DESIGN.md section 15): Schedule.plan produces a
   permutation partition of the unpruned fault set under every policy and
   granularity; executing any plan yields verdicts byte-identical to the
   serial oracle path; a journaled plan resumes across worker counts to a
   byte-identical report; and the satellite seams — mmap spill, post-hoc
   snapshot reconstruction, halve/singleton refinement — preserve replay
   exactly. *)

open Faultsim
module H = Harness

let render_verdicts ~design ~engine ~faults r =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.verdicts ppf ~design ~engine:(H.Campaign.engine_name engine)
    ~faults r;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_resilient ~design ~engine ~faults ~verdicts s =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.resilient ppf ~design ~engine:(H.Campaign.engine_name engine)
    ~faults ~verdicts s;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Transient faults spread over the workload give the planner genuinely
   distinct activation windows to reorder by. *)
let transient_faults d (w : Workload.t) ~count =
  let base =
    Fault.generate_transients ~seed:0x5EEDL ~count
      ~max_cycle:(w.Workload.cycles - 1) d
  in
  let n = Array.length base in
  Array.mapi
    (fun i f ->
      { f with Fault.stuck = Fault.Flip_at (i * (w.Workload.cycles - 1) / max 1 (n - 1)) })
    base

let warm_input g w faults =
  let cone = Flow.Cone.build g in
  let trace = Engine.Concurrent.capture g w in
  let acts = Engine.Concurrent.activations ~cone trace g faults in
  let pruned = Engine.Concurrent.statically_undetectable ~cone g faults in
  { H.Schedule.wi_trace = trace; wi_acts = acts; wi_pruned = pruned }

(* Property: under every policy x granularity x (cold | warm), the plan's
   batches plus its pruned set are a permutation partition of 0..n-1 —
   every fault id exactly once — batch indexes are sequential, costs are
   positive, and warm starts never exceed each batch's earliest
   activation. *)
let test_partition_property () =
  let c = Circuits.find "alu" in
  let d, g, w, stuck = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let fault_sets =
    [ ("stuck", stuck); ("transient", transient_faults d w ~count:17) ]
  in
  let granularities =
    [
      H.Schedule.Size 1; H.Schedule.Size 3; H.Schedule.Size 1000;
      H.Schedule.Chunks 1; H.Schedule.Chunks 4; H.Schedule.Chunks 97;
    ]
  in
  List.iter
    (fun (fname, faults) ->
      let n = Array.length faults in
      let warm = warm_input g w faults in
      List.iter
        (fun (wname, warm) ->
          List.iter
            (fun policy ->
              List.iter
                (fun granularity ->
                  let plan =
                    H.Schedule.plan ~policy ~granularity ?warm ~design:g ~n ()
                  in
                  let ctx =
                    Printf.sprintf "%s/%s/%s" fname wname
                      (H.Schedule.policy_name plan.H.Schedule.sp_policy)
                  in
                  let seen = Array.make n 0 in
                  Array.iter
                    (fun id -> seen.(id) <- seen.(id) + 1)
                    plan.H.Schedule.sp_pruned;
                  Array.iteri
                    (fun bi (b : H.Schedule.batch) ->
                      Alcotest.(check int)
                        (ctx ^ ": batch index sequential") bi
                        b.H.Schedule.sb_index;
                      if Array.length b.H.Schedule.sb_ids = 0 then
                        Alcotest.failf "%s: empty batch %d" ctx bi;
                      if b.H.Schedule.sb_cost <= 0.0 then
                        Alcotest.failf "%s: non-positive cost in batch %d" ctx
                          bi;
                      (match (plan.H.Schedule.sp_acts, warm) with
                      | Some acts, Some wi ->
                          let min_act =
                            Array.fold_left
                              (fun m id -> min m acts.(id))
                              max_int b.H.Schedule.sb_ids
                          in
                          if b.H.Schedule.sb_start > min_act then
                            Alcotest.failf
                              "%s: batch %d starts at %d past activation %d"
                              ctx bi b.H.Schedule.sb_start min_act;
                          ignore wi
                      | _ ->
                          Alcotest.(check int)
                            (ctx ^ ": cold batches start at 0") 0
                            b.H.Schedule.sb_start);
                      Array.iter
                        (fun id -> seen.(id) <- seen.(id) + 1)
                        b.H.Schedule.sb_ids)
                    plan.H.Schedule.sp_batches;
                  Array.iteri
                    (fun id k ->
                      if k <> 1 then
                        Alcotest.failf "%s: fault %d planned %d times" ctx id
                          k)
                    seen)
                granularities)
            [ H.Schedule.Fixed; H.Schedule.Activation; H.Schedule.Adaptive ])
        [ ("cold", None); ("warm", Some warm) ])
    fault_sets

(* A cold Fixed plan must reproduce the historical decompositions exactly:
   Chunks k cuts the i*n/k contiguous ranges, Size s ascending windows. *)
let test_fixed_cold_reproduces_chunks () =
  let n = 59 in
  let g =
    let c = Circuits.find "alu" in
    let _, g, _, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
    g
  in
  List.iter
    (fun k ->
      let plan =
        H.Schedule.plan ~policy:H.Schedule.Adaptive
          ~granularity:(H.Schedule.Chunks k) ~design:g ~n ()
      in
      Alcotest.(check string)
        "cold plans degrade to fixed" "fixed"
        (H.Schedule.policy_name plan.H.Schedule.sp_policy);
      let k' = min k n in
      Alcotest.(check int)
        (Printf.sprintf "chunks %d: batch count" k)
        k'
        (Array.length plan.H.Schedule.sp_batches);
      Array.iteri
        (fun i (b : H.Schedule.batch) ->
          let lo = i * n / k' and hi = (i + 1) * n / k' in
          Alcotest.(check (array int))
            (Printf.sprintf "chunks %d: batch %d is the historical range" k i)
            (Array.init (hi - lo) (fun j -> lo + j))
            b.H.Schedule.sb_ids)
        plan.H.Schedule.sp_batches)
    [ 1; 2; 4; 7; 97 ]

(* Plan execution vs the serial oracle: for every policy, the warm planned
   campaign's verdicts report is byte-identical to the cold one, across
   engines and worker counts. *)
let test_planned_verdicts_byte_identical () =
  let c = Circuits.find "alu" in
  let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  List.iter
    (fun engine ->
      let cold = H.Campaign.run engine g w faults in
      let cold_s = render_verdicts ~design:d ~engine ~faults cold in
      List.iter
        (fun schedule ->
          List.iter
            (fun jobs ->
              let warm =
                H.Campaign.run ~jobs ~warmstart:true ~schedule engine g w
                  faults
              in
              let warm_s = render_verdicts ~design:d ~engine ~faults warm in
              if warm_s <> cold_s then
                Alcotest.failf "%s -j %d --schedule %s: verdicts differ"
                  (H.Campaign.engine_name engine)
                  jobs
                  (H.Schedule.policy_name schedule))
            [ 1; 2 ])
        [ H.Schedule.Fixed; H.Schedule.Activation; H.Schedule.Adaptive ])
    [ H.Campaign.Z01x_proxy; H.Campaign.Eraser ]

(* Simulate a mid-campaign crash: drop the journal's final record. *)
let drop_last_line path =
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let kept = List.rev (match !lines with _ :: tl -> tl | [] -> []) in
  let oc = open_out_bin path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    kept;
  close_out oc

(* A warm journal carries the plan (header field + typed record); a torn
   campaign resumed at a different worker count — and even under a
   different --schedule flag, which resume must ignore in favour of the
   journal's policy — replays to a byte-identical resilient report. *)
let test_plan_resumes_across_jobs () =
  let c = Circuits.find "alu" in
  let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let engine = H.Campaign.Eraser in
  let verdicts = Classify.classify g faults in
  let journal = Filename.temp_file "eraser_schedule" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let cfg =
        {
          H.Resilient.default_config with
          H.Resilient.engine;
          jobs = 1;
          batch_size = 8;
          journal = Some journal;
          warmstart = true;
        }
      in
      let full = H.Resilient.run ~config:cfg g w faults in
      let reference =
        render_resilient ~design:d ~engine ~faults ~verdicts full
      in
      drop_last_line journal;
      let resumed =
        H.Resilient.run
          ~config:
            {
              cfg with
              H.Resilient.resume = true;
              jobs = 4;
              schedule = Some H.Schedule.Fixed;
            }
          g w faults
      in
      if resumed.H.Resilient.batches_resumed = 0 then
        Alcotest.fail "resume replayed nothing from the journal";
      Alcotest.(check string)
        "resumed resilient report byte-identical" reference
        (render_resilient ~design:d ~engine ~faults ~verdicts resumed))

(* Refinement helpers: halve is an order-preserving exact split, singletons
   the per-fault grain, and warm_for the latest snapshot at or before a
   subset's earliest activation. *)
let test_refinement_invariants () =
  Alcotest.(check (option (pair (array int) (array int))))
    "halve of a singleton" None
    (H.Schedule.halve [| 7 |]);
  (match H.Schedule.halve [| 5; 3; 9; 1; 2 |] with
  | Some (l, r) ->
      Alcotest.(check (array int)) "halve left" [| 5; 3 |] l;
      Alcotest.(check (array int)) "halve right" [| 9; 1; 2 |] r
  | None -> Alcotest.fail "halve refused a splittable batch");
  Alcotest.(check (array (array int)))
    "singletons"
    [| [| 4 |]; [| 2 |] |]
    (H.Schedule.singletons [| 4; 2 |]);
  let c = Circuits.find "alu" in
  let d, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let faults = transient_faults d w ~count:17 in
  let n = Array.length faults in
  let warm = warm_input g w faults in
  let plan =
    H.Schedule.plan ~policy:H.Schedule.Activation
      ~granularity:(H.Schedule.Size 4) ~warm ~design:g ~n ()
  in
  let trace =
    match plan.H.Schedule.sp_trace with
    | Some t -> t
    | None -> Alcotest.fail "warm plan retained no trace"
  in
  let acts = Option.get plan.H.Schedule.sp_acts in
  Array.iter
    (fun (b : H.Schedule.batch) ->
      Array.iter
        (fun half ->
          match H.Schedule.warm_for plan half with
          | None -> Alcotest.fail "warm plan gave no warm start"
          | Some wstart ->
              let min_act =
                Array.fold_left (fun m id -> min m acts.(id)) max_int half
              in
              Alcotest.(check int)
                "refined warm start is the snapshot at the subset's \
                 activation"
                (Sim.Goodtrace.start_for trace
                   ~activation:(min min_act trace.Sim.Goodtrace.cycles))
                wstart.Sim.Goodtrace.start)
        (match H.Schedule.halve b.H.Schedule.sb_ids with
        | Some (l, r) -> [| b.H.Schedule.sb_ids; l; r |]
        | None -> [| b.H.Schedule.sb_ids |]))
    plan.H.Schedule.sp_batches

(* Spill satellite: a disk-backed capture replays to byte-identical
   verdicts, both at the trace level and end-to-end through the campaign
   with --capture-mem-limit 0 (spill always). *)
let test_spilled_capture_replays_identically () =
  let c = Circuits.find "alu" in
  let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let trace = Engine.Concurrent.capture g w in
  let sp = Sim.Goodtrace.spill trace in
  if not sp.Sim.Goodtrace.spilled then Alcotest.fail "spill did not spill";
  (* idempotent *)
  if not (Sim.Goodtrace.spill sp == sp) then
    Alcotest.fail "spill of a spilled trace must be the identity";
  for cyc = 0 to trace.Sim.Goodtrace.cycles - 1 do
    if Sim.Goodtrace.output_row trace cyc <> Sim.Goodtrace.output_row sp cyc
    then Alcotest.failf "spilled output row differs at cycle %d" cyc
  done;
  let ids = Array.init (Array.length faults) (fun i -> i) in
  let config =
    { Engine.Concurrent.default_config with mode = Engine.Concurrent.Full }
  in
  let via t =
    Engine.Concurrent.run_batch ~config
      ~goodtrace:{ Sim.Goodtrace.trace = t; start = 0 }
      g w faults ~ids
  in
  let heap = via trace and disk = via sp in
  Alcotest.(check (array bool))
    "spilled replay verdicts" heap.Fault.detected disk.Fault.detected;
  Alcotest.(check (array int))
    "spilled replay cycles" heap.Fault.detection_cycle
    disk.Fault.detection_cycle;
  (* end to end: warm campaign forced to spill == cold campaign *)
  let engine = H.Campaign.Eraser in
  let cold = H.Campaign.run engine g w faults in
  let warm =
    H.Campaign.run ~jobs:2 ~warmstart:true ~capture_mem_limit:0 engine g w
      faults
  in
  Alcotest.(check string)
    "spilled campaign verdicts byte-identical"
    (render_verdicts ~design:d ~engine ~faults cold)
    (render_verdicts ~design:d ~engine ~faults warm)

(* Adaptive's snapshot seam: with_snapshots must reconstruct, from the
   event stream alone, exactly the states an engine capture with
   snapshot_every:1 recorded at those cycles (signals and memory words). *)
let test_with_snapshots_reconstructs_exact_states () =
  let c = Circuits.find "sha256_hv" in
  let d, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
  let exact = Engine.Concurrent.capture ~snapshot_every:1 g w in
  let coarse = Engine.Concurrent.capture g w in
  let cycles = coarse.Sim.Goodtrace.cycles in
  let at = [ 1; 2; cycles / 3; (2 * cycles / 3) + 1; cycles - 1; cycles ] in
  let rebuilt =
    Sim.Goodtrace.with_snapshots coarse ~base:(Sim.State.create d) ~at
  in
  Array.iter
    (fun (cyc, (st : Sim.State.t)) ->
      let want = Sim.Goodtrace.snapshot_at exact cyc in
      for i = 0 to st.Sim.State.nsig - 1 do
        if Bigarray.Array1.get st.Sim.State.sig_v i
           <> Bigarray.Array1.get want.Sim.State.sig_v i
        then
          Alcotest.failf "cycle %d: signal %d differs (%Ld vs %Ld)" cyc i
            (Bigarray.Array1.get st.Sim.State.sig_v i)
            (Bigarray.Array1.get want.Sim.State.sig_v i)
      done;
      for k = 0 to Bigarray.Array1.dim st.Sim.State.mem_v - 1 do
        if Bigarray.Array1.get st.Sim.State.mem_v k
           <> Bigarray.Array1.get want.Sim.State.mem_v k
        then Alcotest.failf "cycle %d: memory word %d differs" cyc k
      done)
    rebuilt.Sim.Goodtrace.snapshots;
  (* the rebuilt snapshot set is what the planner asked for *)
  let got = Array.map fst rebuilt.Sim.Goodtrace.snapshots in
  let want =
    Array.of_list
      (List.sort_uniq compare
         (cycles :: List.filter (fun x -> x >= 1 && x <= cycles) at))
  in
  Alcotest.(check (array int)) "snapshot cycles as requested" want got

let suite =
  [
    Alcotest.test_case
      "plan is a permutation partition (policies x granularities x cold/warm)"
      `Quick test_partition_property;
    Alcotest.test_case "cold fixed plan reproduces historical chunking"
      `Quick test_fixed_cold_reproduces_chunks;
    Alcotest.test_case
      "planned verdicts byte-identical to cold (policies x engines x jobs)"
      `Slow test_planned_verdicts_byte_identical;
    Alcotest.test_case "journaled plan resumes across jobs byte-identically"
      `Quick test_plan_resumes_across_jobs;
    Alcotest.test_case "halve / singletons / warm_for refinement invariants"
      `Quick test_refinement_invariants;
    Alcotest.test_case "spilled capture replays byte-identically" `Quick
      test_spilled_capture_replays_identically;
    Alcotest.test_case "with_snapshots reconstructs exact engine states"
      `Quick test_with_snapshots_reconstructs_exact_states;
  ]
