(* Good-trace warm-start regression suite.

   The contract under test (DESIGN.md section 13): a warm-started campaign
   — good trace captured once, every batch replaying recorded good writes
   and starting from the latest snapshot at or before its earliest fault
   activation — produces a verdicts report byte-identical to the cold
   run's, for every concurrent engine and any worker count, while bn_good
   drops to zero for every batch. *)

open Faultsim
module H = Harness

let concurrent_engines =
  [
    H.Campaign.Z01x_proxy;
    H.Campaign.Eraser_mm;
    H.Campaign.Eraser_m;
    H.Campaign.Eraser;
  ]

let render_verdicts ~design ~engine ~faults r =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.verdicts ppf ~design ~engine:(H.Campaign.engine_name engine)
    ~faults r;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Warm vs cold byte-identity: every concurrent engine, jobs 1/2/4, on the
   alu stuck-at campaign. The cold reference is the monolithic run. *)
let test_warm_byte_identical () =
  let c = Circuits.find "alu" in
  let d, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  List.iter
    (fun engine ->
      let cold = H.Campaign.run engine g w faults in
      let cold_s = render_verdicts ~design:d ~engine ~faults cold in
      List.iter
        (fun jobs ->
          let warm = H.Campaign.run ~jobs ~warmstart:true engine g w faults in
          let warm_s = render_verdicts ~design:d ~engine ~faults warm in
          if warm_s <> cold_s then
            Alcotest.failf
              "%s at -j %d: warm-started verdicts report differs from cold"
              (H.Campaign.engine_name engine)
              jobs;
          Alcotest.(check int)
            (Printf.sprintf "%s -j %d: bn_good is zero under replay"
               (H.Campaign.engine_name engine) jobs)
            0 warm.Fault.stats.Stats.bn_good;
          Alcotest.(check int)
            "exactly one capture behind the warm campaign" 1
            warm.Fault.stats.Stats.goodtrace_captures)
        [ 1; 2; 4 ])
    concurrent_engines

(* Activation-window batching: transient faults spread evenly over the
   workload force distinct activation windows; with two workers the later
   chunk's earliest activation is past the first snapshot, so the dead
   prefix must actually be skipped — and verdicts still match cold. *)
let test_transient_windows_skip_prefix () =
  let c = Circuits.find "alu" in
  let d, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let base =
    Fault.generate_transients ~seed:0x5EEDL ~count:16
      ~max_cycle:(w.Workload.cycles - 1) d
  in
  let n = Array.length base in
  let faults =
    Array.mapi
      (fun i f ->
        { f with Fault.stuck = Fault.Flip_at (i * (w.Workload.cycles - 1) / (n - 1)) })
      base
  in
  let engine = H.Campaign.Eraser in
  let cold = H.Campaign.run engine g w faults in
  let warm = H.Campaign.run ~jobs:2 ~warmstart:true engine g w faults in
  Alcotest.(check string)
    "transient verdicts identical"
    (render_verdicts ~design:d ~engine ~faults cold)
    (render_verdicts ~design:d ~engine ~faults warm);
  if warm.Fault.stats.Stats.good_cycles_skipped <= 0 then
    Alcotest.failf "expected a skipped dead prefix, got %d cycles"
      warm.Fault.stats.Stats.good_cycles_skipped

(* A batch whose faults all activate late must start from a mid snapshot
   and still reproduce the cold batch exactly (restore-at-c-then-run
   equals straight run, at the engine level). *)
let test_warm_batch_equals_cold_batch () =
  let c = Circuits.find "alu" in
  let _, g, w, stuck = Circuits.Bench_circuit.instantiate c ~scale:0.1 in
  let config =
    { Engine.Concurrent.default_config with mode = Engine.Concurrent.Full }
  in
  let trace = Engine.Concurrent.capture ~config g w in
  let late = w.Workload.cycles / 2 in
  let faults =
    Array.mapi
      (fun i f -> { f with Fault.stuck = Fault.Flip_at (late + (i mod (w.Workload.cycles - late))) })
      (Array.sub stuck 0 (min 8 (Array.length stuck)))
  in
  let acts = Engine.Concurrent.activations trace g faults in
  let earliest = Array.fold_left min max_int acts in
  let start = Sim.Goodtrace.start_for trace ~activation:earliest in
  if start <= 0 then
    Alcotest.failf "test premise broken: expected a mid snapshot, got %d" start;
  let ids = Array.init (Array.length faults) (fun i -> i) in
  let cold = Engine.Concurrent.run_batch ~config g w faults ~ids in
  let warm =
    Engine.Concurrent.run_batch ~config
      ~goodtrace:{ Sim.Goodtrace.trace; start }
      g w faults ~ids
  in
  Alcotest.(check (array bool))
    "detected equal" cold.Fault.detected warm.Fault.detected;
  Alcotest.(check (array int))
    "detection cycles equal" cold.Fault.detection_cycle
    warm.Fault.detection_cycle;
  Alcotest.(check int) "prefix skipped" start
    warm.Fault.stats.Stats.good_cycles_skipped

(* The trace itself: replaying the capture (zero faults, warm, start 0)
   must reproduce the recorded per-cycle output vectors. *)
let test_trace_outputs_stable () =
  let c = Circuits.find "apb" in
  let _, g, w, _ = Circuits.Bench_circuit.instantiate c ~scale:0.05 in
  let config =
    { Engine.Concurrent.default_config with mode = Engine.Concurrent.Full }
  in
  let t1 = Engine.Concurrent.capture ~config g w in
  let t2 = Engine.Concurrent.capture ~config g w in
  for cyc = 0 to t1.Sim.Goodtrace.cycles - 1 do
    if
      Sim.Goodtrace.output_row t1 cyc <> Sim.Goodtrace.output_row t2 cyc
    then Alcotest.failf "capture not deterministic at cycle %d" cyc
  done;
  Alcotest.(check int) "snapshot interval recorded" t1.Sim.Goodtrace.snapshot_every
    t2.Sim.Goodtrace.snapshot_every;
  if t1.Sim.Goodtrace.capture_bytes <= 0 then
    Alcotest.fail "capture_bytes must be positive"

let suite =
  [
    Alcotest.test_case
      "warm campaign verdicts byte-identical to cold (all engines, jobs 1/2/4)"
      `Slow test_warm_byte_identical;
    Alcotest.test_case "activation windows skip the dead prefix" `Quick
      test_transient_windows_skip_prefix;
    Alcotest.test_case "warm batch from mid snapshot equals cold batch" `Quick
      test_warm_batch_equals_cold_batch;
    Alcotest.test_case "capture is deterministic" `Quick
      test_trace_outputs_stable;
  ]
