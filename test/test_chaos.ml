(* Chaos-harness tests: deterministic injection plans, recovery of a
   supervised campaign to clean-run verdicts under every injection kind,
   retry/restart journal records surviving resume, the divergence shrinker's
   repro files, and the zero-cost guarantee of the disabled seams. *)
open Faultsim
module H = Harness
module R = Harness.Resilient
module C = Harness.Chaos

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let campaign () =
  let c = Circuits.find "alu" in
  Circuits.Bench_circuit.instantiate c ~scale:0.05

let verdicts_report ~design ~faults (r : Fault.result) =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  H.Json_report.verdicts ppf ~design ~engine:"Eraser" ~faults r;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let supervised_config ~jobs ~journal =
  {
    R.default_config with
    R.jobs;
    batch_size = 6;
    max_batch_seconds = Some 0.5;
    oracle_sample = 1.0;
    supervise = true;
    journal;
  }

(* Run one campaign under an installed chaos plan, resuming from the
   journal whenever the torn-journal injection kills it. Returns the final
   summary plus the per-kind injection counts observed before uninstall. *)
let run_under_chaos plan ~jobs g w faults =
  let journal = Filename.temp_file "eraser_test_chaos" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      C.uninstall ();
      try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      C.install plan;
      let rec attempt n resume =
        let config =
          { (supervised_config ~jobs ~journal:(Some journal)) with R.resume }
        in
        try R.run ~config g w faults
        with C.Killed _ when n < 4 -> attempt (n + 1) true
      in
      let s = attempt 0 false in
      (s, C.counts ()))

(* ---- plan determinism ---- *)

let test_plan_determinism () =
  let plan = { C.default_plan with C.seed = 77L; rate = 0.5 } in
  let schedule () =
    List.concat_map
      (fun k -> List.init 64 (fun b -> C.targets plan k ~batch:b))
      C.all_kinds
  in
  check (Alcotest.list bool_t) "same seed, same schedule" (schedule ())
    (schedule ());
  let fired = List.filter Fun.id (schedule ()) in
  check bool_t "rate 0.5 fires sometimes" true (fired <> []);
  check bool_t "rate 0.5 spares sometimes" true
    (List.length fired < List.length (schedule ()));
  let other = { plan with C.seed = 78L } in
  check bool_t "different seed, different schedule" true
    (schedule ()
    <> List.concat_map
         (fun k -> List.init 64 (fun b -> C.targets other k ~batch:b))
         C.all_kinds);
  check bool_t "rate 0 never fires" false
    (C.targets { plan with C.rate = 0.0 } C.Raise_in_batch ~batch:3);
  check bool_t "rate 1 always fires" true
    (C.targets { plan with C.rate = 1.0 } C.Raise_in_batch ~batch:3);
  check bool_t "disabled kind never fires" false
    (C.targets
       { plan with C.kinds = [ C.Stall_past_deadline ]; rate = 1.0 }
       C.Raise_in_batch ~batch:3)

(* ---- recovery to clean verdicts, per kind ---- *)

let test_kind_converges kind jobs () =
  let design, g, w, faults = campaign () in
  let clean =
    R.run ~config:(supervised_config ~jobs ~journal:None) g w faults
  in
  let clean_report =
    verdicts_report ~design ~faults clean.R.result
  in
  let plan = { C.seed = 11L; kinds = [ kind ]; rate = 1.0 } in
  let s, counts = run_under_chaos plan ~jobs g w faults in
  check bool_t "the injection actually fired" true
    (match List.assoc_opt kind counts with Some n -> n > 0 | None -> false);
  (match kind with
  | C.Raise_in_batch ->
      check bool_t "crashes were supervised" true (s.R.restarts > 0)
  | C.Stall_past_deadline ->
      check bool_t "stalls tripped the watchdog" true (s.R.retries > 0)
  | C.Corrupt_diffstore ->
      check bool_t "corruptions were quarantined" true
        (s.R.divergences <> [])
  | C.Torn_journal_write ->
      check bool_t "the kill forced a resume" true (s.R.batches_resumed >= 0));
  check bool_t "no fault abandoned" true (s.R.failed_faults = []);
  check Alcotest.string
    (Printf.sprintf "%s: verdicts identical to the clean run"
       (C.kind_name kind))
    clean_report
    (verdicts_report ~design ~faults s.R.result)

let test_all_kinds_converge () =
  let design, g, w, faults = campaign () in
  let clean =
    R.run ~config:(supervised_config ~jobs:2 ~journal:None) g w faults
  in
  let clean_report = verdicts_report ~design ~faults clean.R.result in
  List.iter
    (fun seed ->
      let plan = { C.default_plan with C.seed; rate = 0.6 } in
      let s, _counts = run_under_chaos plan ~jobs:2 g w faults in
      check Alcotest.string
        (Printf.sprintf "seed %Ld converges" seed)
        clean_report
        (verdicts_report ~design ~faults s.R.result))
    [ 5L; 6L ]

(* ---- retry records resume ---- *)

let test_retry_records_resume () =
  (* A chaos campaign's journal carries its retry/restart records; a plain
     (chaos-free) resume of the finished journal must reconstruct the same
     retry and restart totals without re-executing anything. *)
  let _, g, w, faults = campaign () in
  let journal = Filename.temp_file "eraser_test_chaos" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      C.uninstall ();
      try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let plan =
        { C.seed = 9L; kinds = [ C.Raise_in_batch; C.Stall_past_deadline ];
          rate = 1.0 }
      in
      C.install plan;
      let s =
        R.run
          ~config:(supervised_config ~jobs:1 ~journal:(Some journal))
          g w faults
      in
      C.uninstall ();
      check bool_t "restarts happened" true (s.R.restarts > 0);
      check bool_t "splits happened" true (s.R.retries > 0);
      let resumed =
        R.run
          ~config:
            {
              (supervised_config ~jobs:1 ~journal:(Some journal)) with
              R.resume = true;
            }
          g w faults
      in
      check int_t "nothing re-executed" 0 resumed.R.batches_executed;
      check int_t "restart records replayed" s.R.restarts resumed.R.restarts;
      check int_t "split records replayed" s.R.retries resumed.R.retries)

(* ---- the shrinker ---- *)

let test_shrinker_writes_repro () =
  let _, g, w, faults = campaign () in
  let dir = Filename.temp_file "eraser_test_repro" "" in
  Sys.remove dir;
  let cfg =
    {
      (supervised_config ~jobs:2 ~journal:None) with
      R.inject_divergence = Some 3;
      repro_dir = Some dir;
      repro_meta = Some ("alu", 0.05);
    }
  in
  let s = R.run ~config:cfg g w faults in
  check
    (Alcotest.list Alcotest.string)
    "one repro written" [ "repro-3.json" ] s.R.repros;
  check bool_t "fault 3 quarantined" true (List.mem 3 s.R.quarantined);
  let path = Filename.concat dir "repro-3.json" in
  let ic = open_in_bin path in
  let line = input_line ic in
  close_in ic;
  let j = H.Jsonl.parse line in
  Sys.remove path;
  (try Sys.rmdir dir with Sys_error _ -> ());
  check Alcotest.string "record type" "repro" (H.Jsonl.get_string "type" j);
  let ids = List.map H.Jsonl.to_int (H.Jsonl.get_list "ids" j) in
  check bool_t "divergent fault in its minimal set" true (List.mem 3 ids);
  check bool_t "fault set minimal" true (List.length ids <= 10);
  let cycles = H.Jsonl.get_int "cycles" j in
  check bool_t "window minimal" true (cycles >= 1 && cycles <= 50);
  let ed = H.Jsonl.get_bool "engine_detected" j
  and ec = H.Jsonl.get_int "engine_cycle" j
  and od = H.Jsonl.get_bool "oracle_detected" j
  and oc = H.Jsonl.get_int "oracle_cycle" j in
  check bool_t "recorded verdicts diverge" true (ed <> od || (ed && ec <> oc));
  check bool_t "shrink stats recorded" true (H.Jsonl.get_int "attempts" j >= 1);
  (* deterministic: a jobs=1 campaign shrinks to the same reproducer *)
  Sys.mkdir dir 0o755;
  let s1 = R.run ~config:{ cfg with R.jobs = 1 } g w faults in
  check
    (Alcotest.list Alcotest.string)
    "jobs 1 writes the same repro" s.R.repros s1.R.repros;
  let ic = open_in_bin path in
  let line1 = input_line ic in
  close_in ic;
  Sys.remove path;
  (try Sys.rmdir dir with Sys_error _ -> ());
  check Alcotest.string "repro byte-identical across jobs" line line1

(* ---- disabled seams are free ---- *)

let test_disabled_seams_no_alloc () =
  C.uninstall ();
  (* warm up *)
  ignore (C.active ());
  C.batch_start ~batch:0;
  ignore (C.stall ~batch:0);
  ignore (C.torn_write ~batch:0 "x");
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    ignore (C.active ());
    C.batch_start ~batch:i;
    ignore (C.stall ~batch:i);
    ignore (C.torn_write ~batch:i "x");
    ignore (Atomic.get Engine.Concurrent.chaos_corrupt_diff);
    ignore (Atomic.get H.Pool.chaos_hook)
  done;
  let after = Gc.minor_words () in
  check (Alcotest.float 0.0) "no minor allocation when uninstalled" 0.0
    (after -. before)

let suite =
  [
    Alcotest.test_case "plans are pure functions of the seed" `Quick
      test_plan_determinism;
    Alcotest.test_case "raise-in-batch converges (jobs 2)" `Quick
      (test_kind_converges C.Raise_in_batch 2);
    Alcotest.test_case "raise-in-batch converges (jobs 1)" `Quick
      (test_kind_converges C.Raise_in_batch 1);
    Alcotest.test_case "stall-past-deadline converges" `Quick
      (test_kind_converges C.Stall_past_deadline 2);
    Alcotest.test_case "corrupt-diffstore converges" `Quick
      (test_kind_converges C.Corrupt_diffstore 2);
    Alcotest.test_case "torn-journal-write converges" `Quick
      (test_kind_converges C.Torn_journal_write 2);
    Alcotest.test_case "all kinds together converge" `Quick
      test_all_kinds_converge;
    Alcotest.test_case "retry records survive resume" `Quick
      test_retry_records_resume;
    Alcotest.test_case "shrinker writes a minimal repro" `Quick
      test_shrinker_writes_repro;
    Alcotest.test_case "disabled seams allocate nothing" `Quick
      test_disabled_seams_no_alloc;
  ]
