(* Static fault classification: unit checks for the constant propagation and
   observability analyses, plus the soundness property against simulation —
   a fault proven untestable is never detected by any engine. *)
open Rtlir
open Faultsim
module B = Builder
open B.Ops

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let test_constant_propagation () =
  let ctx = B.create "constprop" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 8 in
  (* a chain of constant logic *)
  let k1 = B.wire ctx "k1" 8 in
  B.assign ctx k1 (B.const 8 0xF0);
  let k2 = B.wire ctx "k2" 8 in
  B.assign ctx k2 (k1 |: B.const 8 0x0C);
  (* an unwritten register is constant zero; logic over it folds *)
  let dead = B.reg ctx "dead" 4 in
  let k3 = B.wire ctx "k3" 4 in
  B.assign ctx k3 (dead +: B.const 4 3);
  (* live logic does not fold *)
  let live = B.wire ctx "live" 8 in
  B.assign ctx live (a ^: k2);
  let q = B.reg ctx "q" 8 in
  B.always_ff ctx ~clock:clk [ q <-- live ];
  let o = B.output ctx "o" 8 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let g = Elaborate.build d in
  let consts = Classify.constants g in
  let cv name = consts.(Design.find_signal d name) in
  check bool_t "k1 folded" true (cv "k1" = Some (Bits.of_int 8 0xF0));
  check bool_t "k2 folded" true (cv "k2" = Some (Bits.of_int 8 0xFC));
  check bool_t "dead reg constant" true (cv "dead" = Some (Bits.zero 4));
  check bool_t "k3 folded over dead reg" true (cv "k3" = Some (Bits.of_int 4 3));
  check bool_t "live not folded" true (cv "live" = None);
  check bool_t "input not folded" true (cv "a" = None);
  (* classification: k2 bit 7 is 1, so stuck-at-1 there is untestable *)
  let f bit stuck =
    { Fault.fid = 0; signal = Design.find_signal d "k2"; bit; stuck }
  in
  let v = Classify.classify g [| f 7 Fault.Stuck_at_1 |] in
  check bool_t "sa1 on constant 1" true (v.(0) = Classify.Untestable_constant);
  let v = Classify.classify g [| f 7 Fault.Stuck_at_0 |] in
  (* k2 feeds live -> q -> o, and stuck-at-0 differs from the constant 1 *)
  check bool_t "sa0 on constant-1 bit is testable" true
    (v.(0) = Classify.Testable);
  (* k3 feeds nothing: unobservable even where the stuck value differs *)
  let fk3 =
    { Fault.fid = 0; signal = Design.find_signal d "k3"; bit = 0;
      stuck = Fault.Stuck_at_0 }
  in
  let v = Classify.classify g [| fk3 |] in
  check bool_t "k3 unobservable" true
    (v.(0) = Classify.Untestable_unobservable)

let test_observability () =
  let ctx = B.create "obs" in
  let clk = B.input ctx "clk" 1 in
  let a = B.input ctx "a" 4 in
  (* a register that feeds only another dead register *)
  let dead1 = B.reg ctx "dead1" 4 in
  let dead2 = B.reg ctx "dead2" 4 in
  B.always_ff ctx ~name:"deadchain" ~clock:clk
    [ dead1 <-- a; dead2 <-- dead1 ];
  let q = B.reg ctx "q" 4 in
  B.always_ff ctx ~name:"livechain" ~clock:clk [ q <-- a ];
  let o = B.output ctx "o" 4 in
  B.assign ctx o q;
  let d = B.finalize ctx in
  let g = Elaborate.build d in
  let fault name =
    { Fault.fid = 0; signal = Design.find_signal d name; bit = 0;
      stuck = Fault.Stuck_at_1 }
  in
  let v = Classify.classify g [| fault "dead2"; fault "q"; fault "a" |] in
  check bool_t "dead2 unobservable" true
    (v.(0) = Classify.Untestable_unobservable);
  check bool_t "q observable" true (v.(1) = Classify.Testable);
  check bool_t "a observable" true (v.(2) = Classify.Testable)

(* soundness against simulation, on every circuit and on random designs *)
let untestable_never_detected name g w faults =
  let verdicts = Classify.classify g faults in
  let r = Engine.Concurrent.run g w faults in
  Array.iteri
    (fun i v ->
      if v <> Classify.Testable && r.Fault.detected.(i) then
        Alcotest.failf "%s: fault %d classified %s but detected" name i
          (Classify.verdict_name v))
    verdicts;
  (match Classify.adjusted_coverage verdicts r with
  | Some adj when adj +. 1e-9 < r.Fault.coverage_pct ->
      Alcotest.failf "%s: adjusted coverage below raw coverage" name
  | Some _ -> ()
  | None ->
      (* no testable fault at all: soundness then demands zero detections *)
      if Fault.count_detected r > 0 then
        Alcotest.failf "%s: nothing testable yet faults detected" name)

let soundness_case (c : Circuits.Bench_circuit.t) =
  Alcotest.test_case (c.name ^ " classification sound") `Quick (fun () ->
      let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale:0.08 in
      untestable_never_detected c.name g w faults)

let test_soundness_random () =
  for seed = 1 to 25 do
    let s =
      Harness.Rand_design.generate ~seed:(Int64.of_int (90_000 + seed)) ()
    in
    untestable_never_detected
      (Printf.sprintf "rand%d" seed)
      s.Harness.Rand_design.graph s.Harness.Rand_design.workload
      s.Harness.Rand_design.faults
  done

let test_adjusted_coverage () =
  let verdicts =
    [| Classify.Testable; Classify.Untestable_constant; Classify.Testable |]
  in
  let r =
    Fault.make_result
      ~detected:[| true; false; false |]
      ~stats:(Stats.create ()) ~wall_time:0.0 ()
  in
  check (Alcotest.option (Alcotest.float 0.01)) "adjusted" (Some 50.0)
    (Classify.adjusted_coverage verdicts r);
  check int_t "raw detected" 1 (Fault.count_detected r);
  (* no testable fault: the ratio is undefined, not a perfect 100% *)
  let none_testable =
    [| Classify.Untestable_constant; Classify.Untestable_unobservable |]
  in
  let r_empty =
    Fault.make_result
      ~detected:[| false; false |]
      ~stats:(Stats.create ()) ~wall_time:0.0 ()
  in
  check (Alcotest.option (Alcotest.float 0.01)) "undefined when none testable"
    None
    (Classify.adjusted_coverage none_testable r_empty)

let suite =
  [
    Alcotest.test_case "constant propagation" `Quick test_constant_propagation;
    Alcotest.test_case "observability" `Quick test_observability;
  ]
  @ List.map soundness_case Circuits.all
  @ [
      Alcotest.test_case "soundness on random designs" `Quick
        test_soundness_random;
      Alcotest.test_case "adjusted coverage" `Quick test_adjusted_coverage;
    ]
