(* Validate a BENCH_warmstart.json document (bench-smoke alias): parse it
   back through Harness.Jsonl and check the schema plus the invariants the
   warm-start design guarantees — warm verdicts equal to cold on every
   circuit, zero good behavioral executions under replay, exactly one
   capture per campaign, and finite timing fields. *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail "usage: validate_warmstart FILE"
  in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "experiment" doc <> "warmstart" then
    fail "%s: not a warmstart document" path;
  let finite what v =
    if not (Float.is_finite v) then fail "%s: non-finite %s" path what;
    v
  in
  ignore (finite "scale" (J.get_float "scale" doc));
  let circuits = J.get_list "circuits" doc in
  if circuits = [] then fail "%s: no circuits" path;
  List.iter
    (fun c ->
      let name = J.get_string "name" c in
      if J.get_int "faults" c < 1 then fail "%s: no faults" name;
      if J.get_int "cycles" c < 1 then fail "%s: no cycles" name;
      if J.get_int "batches" c < 1 then fail "%s: no batches" name;
      if finite "cold_wall_s" (J.get_float "cold_wall_s" c) < 0.0 then
        fail "%s: negative cold wall" name;
      if finite "warm_wall_s" (J.get_float "warm_wall_s" c) < 0.0 then
        fail "%s: negative warm wall" name;
      if finite "speedup" (J.get_float "speedup" c) <= 0.0 then
        fail "%s: non-positive speedup" name;
      if J.get_int "cold_bn_good" c < 1 then
        fail "%s: cold run executed no good behavioral nodes" name;
      (* the whole point: every warm batch replays the trace instead of
         re-simulating the good network *)
      if J.get_int "warm_bn_good" c <> 0 then
        fail "%s: warm bn_good is %d, expected 0" name
          (J.get_int "warm_bn_good" c);
      if J.get_int "good_cycles_skipped" c < 0 then
        fail "%s: negative cycles skipped" name;
      if J.get_int "goodtrace_captures" c <> 1 then
        fail "%s: expected exactly one capture, got %d" name
          (J.get_int "goodtrace_captures" c);
      if J.get_int "capture_bytes" c < 1 then
        fail "%s: capture has no footprint" name;
      if not (J.get_bool "verdicts_equal" c) then
        fail "%s: warm verdicts differ from cold" name)
    circuits;
  Printf.printf "bench-smoke: %s ok (%d circuits)\n" path
    (List.length circuits)
