(* Validate a repro-<fault>.json reproducer (chaos-smoke alias): parse it
   back through Harness.Jsonl and check the version-1 schema and the
   invariants the shrinker guarantees — the divergent fault belongs to the
   minimal set, the verdict pair actually diverges, the minimisation is
   honest (no larger than the acceptance bound: 10 faults, 50 cycles), and
   the expected-vs-observed output table is well-formed. *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail "usage: validate_chaos REPRO.json"
  in
  let ic = open_in_bin path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "type" doc <> "repro" then
    fail "%s: not a repro record" path;
  if J.get_int "version" doc <> 1 then fail "%s: unknown version" path;
  if J.get_string "design" doc = "" then fail "%s: empty design" path;
  if J.get_string "engine" doc = "" then fail "%s: empty engine" path;
  (match J.member "circuit" doc with
  | Some (J.Obj _ as c) ->
      if J.get_string "name" c = "" then fail "%s: empty circuit name" path;
      if not (Float.is_finite (J.get_float "scale" c)) then
        fail "%s: non-finite scale" path
  | Some J.Null -> ()
  | _ -> fail "%s: malformed circuit" path);
  let fault =
    match J.member "fault" doc with
    | Some (J.Obj _ as f) -> f
    | _ -> fail "%s: missing fault descriptor" path
  in
  let fid = J.get_int "id" fault in
  if fid < 0 then fail "%s: negative fault id" path;
  if J.get_int "signal" fault < 0 then fail "%s: negative signal" path;
  if J.get_int "bit" fault < 0 then fail "%s: negative bit" path;
  if J.get_string "name" fault = "" then fail "%s: empty fault name" path;
  if J.get_string "kind" fault = "" then fail "%s: empty fault kind" path;
  let ids = List.map J.to_int (J.get_list "ids" doc) in
  if ids = [] then fail "%s: empty fault set" path;
  if not (List.mem fid ids) then
    fail "%s: divergent fault %d not in its own fault set" path fid;
  if List.length ids > 10 then
    fail "%s: fault set not minimal (%d faults)" path (List.length ids);
  let cycles = J.get_int "cycles" doc in
  if cycles < 1 then fail "%s: empty cycle window" path;
  if cycles > 50 then fail "%s: cycle window not minimal (%d)" path cycles;
  let ed = J.get_bool "engine_detected" doc
  and ec = J.get_int "engine_cycle" doc
  and od = J.get_bool "oracle_detected" doc
  and oc = J.get_int "oracle_cycle" doc in
  if not (ed <> od || (ed && ec <> oc)) then
    fail "%s: recorded verdicts do not diverge" path;
  if ed && (ec < 0 || ec >= cycles) then
    fail "%s: engine detection cycle %d outside the window" path ec;
  if od && (oc < 0 || oc >= cycles) then
    fail "%s: oracle detection cycle %d outside the window" path oc;
  if J.get_int "attempts" doc < 1 then fail "%s: no shrink attempts" path;
  List.iter
    (fun o ->
      if J.get_string "port" o = "" then fail "%s: empty output port" path;
      ignore (J.get_string "expected" o);
      ignore (J.get_string "observed" o))
    (J.get_list "outputs" doc);
  Printf.printf "chaos-smoke: %s ok (%d fault(s), %d cycle(s))\n" path
    (List.length ids) cycles
