(* Validate a BENCH_schedule.json document (bench-smoke alias): parse it
   back through Harness.Jsonl and check the schema plus the invariants the
   schedule planner guarantees — all three policies present per circuit,
   verdicts equal to the cold baseline under every policy, sane plan
   shapes, finite timing fields, and the point of the adaptive policy: at
   least one circuit where adaptive skips at least as many good cycles as
   fixed, and skips some at all. *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail "usage: validate_schedule FILE"
  in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "experiment" doc <> "schedule" then
    fail "%s: not a schedule document" path;
  let finite what v =
    if not (Float.is_finite v) then fail "%s: non-finite %s" path what;
    v
  in
  ignore (finite "scale" (J.get_float "scale" doc));
  let circuits = J.get_list "circuits" doc in
  if circuits = [] then fail "%s: no circuits" path;
  let adaptive_pays = ref false in
  List.iter
    (fun c ->
      let name = J.get_string "name" c in
      if J.get_int "faults" c < 1 then fail "%s: no faults" name;
      if J.get_int "cycles" c < 1 then fail "%s: no cycles" name;
      if finite "cold_wall_s" (J.get_float "cold_wall_s" c) < 0.0 then
        fail "%s: negative cold wall" name;
      if finite "capture_wall_s" (J.get_float "capture_wall_s" c) < 0.0 then
        fail "%s: negative capture wall" name;
      let policies = J.get_list "policies" c in
      if List.length policies <> 3 then
        fail "%s: expected 3 policies, got %d" name (List.length policies);
      let by pname =
        match
          List.find_opt (fun p -> J.get_string "policy" p = pname) policies
        with
        | Some p -> p
        | None -> fail "%s: missing policy %S" name pname
      in
      List.iter
        (fun p ->
          let pol = J.get_string "policy" p in
          if finite (pol ^ " wall_s") (J.get_float "wall_s" p) < 0.0 then
            fail "%s/%s: negative wall" name pol;
          if J.get_int "plan_batches" p < 1 then
            fail "%s/%s: no planned batches" name pol;
          if J.get_int "plan_snapshots" p < 1 then
            fail "%s/%s: planned trace holds no snapshots" name pol;
          if J.get_int "good_cycles_skipped" p < 0 then
            fail "%s/%s: negative cycles skipped" name pol;
          (* the planner's soundness gate: any policy, same verdicts *)
          if not (J.get_bool "verdicts_equal" p) then
            fail "%s/%s: verdicts differ from the cold baseline" name pol)
        policies;
      let skipped pname = J.get_int "good_cycles_skipped" (by pname) in
      if skipped "adaptive" >= skipped "fixed" && skipped "adaptive" > 0 then
        adaptive_pays := true)
    circuits;
  if not !adaptive_pays then
    fail
      "%s: adaptive never skipped more good cycles than fixed on any circuit"
      path;
  Printf.printf "bench-smoke: %s ok (%d circuits)\n" path
    (List.length circuits)
