(* Validate a BENCH_repr.json document (bench-smoke alias): parse it back
   through Harness.Jsonl and check the schema and the invariants the
   experiment guarantees — both Table II circuits present, all three eval
   styles per circuit, finite positive timings, speedup consistent with the
   recorded wall times, and the flat representation beating the boxed one
   on at least one circuit/style pair (the bytecode path wins by several x
   even at smoke scale, so a >= 1.0 bar is noise-proof). *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: validate_repr FILE" in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "experiment" doc <> "repr" then
    fail "%s: not a repr document" path;
  let finite what v =
    if not (Float.is_finite v) then fail "%s: non-finite %s" path what;
    v
  in
  if finite "scale" (J.get_float "scale" doc) <= 0.0 then
    fail "%s: non-positive scale" path;
  let circuits = J.get_list "circuits" doc in
  let names = List.map (fun c -> J.get_string "name" c) circuits in
  if List.sort compare names <> [ "alu"; "sha256_hv" ] then
    fail "%s: expected circuits alu and sha256_hv" path;
  let best = ref 0.0 in
  List.iter
    (fun c ->
      let name = J.get_string "name" c in
      if J.get_int "faults" c < 1 then fail "%s: no faults" name;
      if J.get_int "cycles" c < 1 then fail "%s: no cycles" name;
      let styles = J.get_list "styles" c in
      let style_names = List.map (fun s -> J.get_string "style" s) styles in
      if List.sort compare style_names <> [ "ast"; "bytecode"; "closures" ]
      then fail "%s: expected styles closures, ast, bytecode" name;
      List.iter
        (fun s ->
          let style = J.get_string "style" s in
          let bw = finite "boxed_wall_s" (J.get_float "boxed_wall_s" s) in
          let fw = finite "flat_wall_s" (J.get_float "flat_wall_s" s) in
          if bw <= 0.0 || fw <= 0.0 then
            fail "%s/%s: non-positive wall time" name style;
          if finite "flat_faults_per_sec" (J.get_float "flat_faults_per_sec" s)
             <= 0.0
          then fail "%s/%s: non-positive throughput" name style;
          let speedup =
            finite "speedup_vs_boxed" (J.get_float "speedup_vs_boxed" s)
          in
          if abs_float (speedup -. (bw /. fw)) > 1e-9 *. speedup then
            fail "%s/%s: speedup inconsistent with wall times" name style;
          if speedup > !best then best := speedup)
        styles)
    circuits;
  if !best < 1.0 then
    fail "%s: flat representation never beats boxed (best %.2fx)" path !best;
  Printf.printf "bench-smoke: %s ok (best flat speedup %.2fx)\n" path !best
