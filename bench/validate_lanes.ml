(* Validate a BENCH_lanes.json document (bench-smoke alias): parse it back
   through Harness.Jsonl and check the schema plus the two claims the
   lane-packed mode stands on — verdicts equal to the scalar run on every
   circuit, and strictly fewer faulty behavior-network executions on every
   circuit (identical-overlay lanes share one pass). Wall time is noisy at
   smoke scale, so it is only gated where the effect is largest: the
   packed run must beat the scalar run on sha256. *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail "usage: validate_lanes FILE"
  in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "experiment" doc <> "lanes" then
    fail "%s: not a lanes document" path;
  let finite what v =
    if not (Float.is_finite v) then fail "%s: non-finite %s" path what;
    v
  in
  ignore (finite "scale" (J.get_float "scale" doc));
  let circuits = J.get_list "circuits" doc in
  if List.length circuits <> 3 then
    fail "%s: expected 3 circuits, got %d" path (List.length circuits);
  let sha_beats_scalar = ref false in
  List.iter
    (fun c ->
      let name = J.get_string "name" c in
      let faults = J.get_int "faults" c in
      if faults < 1 then fail "%s: no faults" name;
      if J.get_int "cycles" c < 1 then fail "%s: no cycles" name;
      let scalar_wall = finite "scalar_wall_s" (J.get_float "scalar_wall_s" c)
      and packed_wall = finite "packed_wall_s" (J.get_float "packed_wall_s" c)
      in
      if scalar_wall < 0.0 || packed_wall < 0.0 then
        fail "%s: negative wall time" name;
      if finite "capture_wall_s" (J.get_float "capture_wall_s" c) < 0.0 then
        fail "%s: negative capture wall" name;
      let groups = J.get_int "lane_groups" c in
      if groups < 1 then fail "%s: packed run reports no lane groups" name;
      if groups > (faults + 63) / 64 then
        fail "%s: more lane groups (%d) than %d faults can fill" name groups
          faults;
      let occ = finite "lane_occupancy_mean" (J.get_float "lane_occupancy_mean" c) in
      if occ < 1.0 || occ > 64.0 then
        fail "%s: lane occupancy mean %.2f outside [1, 64]" name occ;
      let fb = J.get_int "scalar_fallbacks" c in
      if fb < 0 || fb > faults then
        fail "%s: scalar fallbacks %d outside the batch" name fb;
      (* the mode's soundness gate: packing changes execution, not verdicts *)
      if not (J.get_bool "verdicts_equal" c) then
        fail "%s: lane-packed verdicts differ from scalar" name;
      (* the mode's point: strictly fewer faulty behavior-network passes *)
      let sbn = J.get_int "scalar_bn_fault_exec" c
      and pbn = J.get_int "packed_bn_fault_exec" c in
      if sbn < 1 then fail "%s: scalar run executed nothing" name;
      if pbn >= sbn then
        fail "%s: packing did not reduce bn_fault_exec (%d >= %d)" name pbn
          sbn;
      if String.length name >= 3 && String.sub name 0 3 = "SHA" then
        sha_beats_scalar := packed_wall < scalar_wall)
    circuits;
  if not !sha_beats_scalar then
    fail "%s: packed wall time did not beat scalar on sha256" path;
  Printf.printf "bench-smoke: %s ok (%d circuits)\n" path
    (List.length circuits)
