(* Validate a BENCH_activation.json document (bench-smoke alias): parse it
   back through Harness.Jsonl and check the schema plus the invariants the
   cone-refined activation rule guarantees — refined windows sum at least
   as high as the legacy rule's, the measured skipped prefix never drops
   below the legacy replay's, at least one comb-heavy circuit strictly
   improves on it, and warm verdicts equal cold everywhere. *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else fail "usage: validate_activation FILE"
  in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "experiment" doc <> "activation" then
    fail "%s: not an activation document" path;
  let finite what v =
    if not (Float.is_finite v) then fail "%s: non-finite %s" path what;
    v
  in
  ignore (finite "scale" (J.get_float "scale" doc));
  let circuits = J.get_list "circuits" doc in
  if circuits = [] then fail "%s: no circuits" path;
  let strict_gain = ref false in
  List.iter
    (fun c ->
      let name = J.get_string "name" c in
      if J.get_int "faults" c < 1 then fail "%s: no faults" name;
      if J.get_int "cycles" c < 1 then fail "%s: no cycles" name;
      if J.get_int "batches" c < 1 then fail "%s: no batches" name;
      if J.get_int "statically_pruned" c < 0 then
        fail "%s: negative pruned count" name;
      let leg_win = J.get_int "legacy_window_sum" c in
      let cone_win = J.get_int "cone_window_sum" c in
      if leg_win < 0 then fail "%s: negative legacy window sum" name;
      (* soundness: the refined rule only ever moves windows later *)
      if cone_win < leg_win then
        fail "%s: cone windows sum %d below legacy %d" name cone_win leg_win;
      let leg_skip = J.get_int "legacy_cycles_skipped" c in
      let cone_skip = J.get_int "good_cycles_skipped" c in
      if leg_skip < 0 then fail "%s: negative legacy skip" name;
      if cone_skip < leg_skip then
        fail "%s: cone skipped %d cycles, legacy replay skipped %d" name
          cone_skip leg_skip;
      if cone_skip > leg_skip then strict_gain := true;
      if finite "cold_wall_s" (J.get_float "cold_wall_s" c) < 0.0 then
        fail "%s: negative cold wall" name;
      if finite "cone_wall_s" (J.get_float "cone_wall_s" c) < 0.0 then
        fail "%s: negative cone wall" name;
      if not (J.get_bool "verdicts_equal" c) then
        fail "%s: warm verdicts differ from cold" name)
    circuits;
  (* the headline claim: on at least one comb-heavy circuit the cone rule
     skips strictly more good-network prefix than the legacy rule could *)
  if not !strict_gain then
    fail "%s: no circuit skipped strictly more cycles than the legacy rule"
      path;
  Printf.printf "bench-smoke: %s ok (%d circuits)\n" path
    (List.length circuits)
