(* Paper-reproduction harness: regenerates every table and figure of the
   evaluation section, plus Bechamel micro-benchmarks of the kernels that
   explain them.

     dune exec bench/main.exe                  # everything, default scale
     dune exec bench/main.exe -- fig6 --scale 0.5
     dune exec bench/main.exe -- micro

   Scale multiplies the paper's per-circuit stimulus and fault counts
   (Table II); the committed reference outputs in EXPERIMENTS.md record the
   scale they were produced at. *)

open Rtlir
module H = Harness

let ppf = Format.std_formatter

let table1 () = H.Report.environment ppf ()

let table2 ~scale =
  Format.fprintf ppf "@.";
  H.Report.table2 ppf (H.Experiments.table2 ~scale)

let table3 ~scale =
  Format.fprintf ppf "@.";
  H.Report.table3 ppf (H.Experiments.table3 ~scale)

let fig1b ~scale =
  Format.fprintf ppf "@.";
  H.Report.fig1b ppf (H.Experiments.fig1b ~scale)

let fig6 ~scale =
  Format.fprintf ppf "@.";
  H.Report.perf
    ~title:
      "Fig. 6: Performance comparison of RTL fault simulators (IFsim is the \
       baseline)"
    ppf
    (H.Experiments.fig6 ~scale)

let fig7 ~scale =
  Format.fprintf ppf "@.";
  H.Report.perf
    ~title:
      "Fig. 7: Ablation on redundancy elimination (Eraser-- / Eraser- / \
       Eraser)"
    ppf
    (H.Experiments.fig7 ~scale)

let ablation ~scale =
  Format.fprintf ppf "@.";
  H.Report.mem_ablation ppf (H.Experiments.mem_ablation ~scale)

let resilience ~scale =
  Format.fprintf ppf "@.";
  H.Report.resilience ppf (H.Experiments.resilience ~scale)

let scaling ~scale ~jobs ~out =
  Format.fprintf ppf "@.";
  let rows = H.Experiments.scaling ~jobs ~scale () in
  H.Report.scaling ppf rows;
  let json = H.Experiments.scaling_json ~scale rows in
  let text = H.Jsonl.to_string json in
  (* self-check: the emitted document must parse back *)
  ignore (H.Jsonl.parse text);
  H.Resilient.write_atomic out (fun oc ->
      output_string oc text;
      output_char oc '\n');
  Format.fprintf ppf "  json       %s@." out

let warmstart ~scale ~jobs ~out =
  Format.fprintf ppf "@.";
  let jobs = match jobs with j :: _ -> j | [] -> 4 in
  let rows = H.Experiments.warmstart ~jobs ~scale () in
  H.Report.warmstart ppf rows;
  let json = H.Experiments.warmstart_json ~scale rows in
  let text = H.Jsonl.to_string json in
  ignore (H.Jsonl.parse text);
  H.Resilient.write_atomic out (fun oc ->
      output_string oc text;
      output_char oc '\n');
  Format.fprintf ppf "  json       %s@." out

let activation ~scale ~jobs ~out =
  Format.fprintf ppf "@.";
  let jobs = match jobs with j :: _ -> j | [] -> 4 in
  let rows = H.Experiments.activation ~jobs ~scale () in
  H.Report.activation ppf rows;
  let json = H.Experiments.activation_json ~scale rows in
  let text = H.Jsonl.to_string json in
  ignore (H.Jsonl.parse text);
  H.Resilient.write_atomic out (fun oc ->
      output_string oc text;
      output_char oc '\n');
  Format.fprintf ppf "  json       %s@." out

let schedule ~scale ~jobs ~out =
  Format.fprintf ppf "@.";
  let jobs = match jobs with j :: _ -> j | [] -> 4 in
  let rows = H.Experiments.schedule ~jobs ~scale () in
  H.Report.schedule ppf rows;
  let json = H.Experiments.schedule_json ~scale rows in
  let text = H.Jsonl.to_string json in
  ignore (H.Jsonl.parse text);
  H.Resilient.write_atomic out (fun oc ->
      output_string oc text;
      output_char oc '\n');
  Format.fprintf ppf "  json       %s@." out

let lanes ~scale ~jobs ~out =
  Format.fprintf ppf "@.";
  let jobs = match jobs with j :: _ -> j | [] -> 1 in
  let rows = H.Experiments.lanes ~jobs ~scale () in
  H.Report.lanes ppf rows;
  let json = H.Experiments.lanes_json ~scale rows in
  let text = H.Jsonl.to_string json in
  ignore (H.Jsonl.parse text);
  H.Resilient.write_atomic out (fun oc ->
      output_string oc text;
      output_char oc '\n');
  Format.fprintf ppf "  json       %s@." out

(* --- representation experiment: boxed vs flat value representation --- *)

(* End-to-end serial fault-simulation throughput (compile + golden trace +
   one full simulator per fault) under each evaluation style, old (boxed
   Bits.t per value) vs new (flat int64 state) representation. The two
   representations are verdict-checked against each other on every run. *)
let repr_bench ~scale ~out =
  Format.fprintf ppf
    "@.Value representation: boxed vs flat, serial engine per style@.";
  let styles =
    [
      ("closures", Sim.Simulator.Closures);
      ("ast", Sim.Simulator.Ast);
      ("bytecode", Sim.Simulator.Bytecode);
    ]
  in
  let circuits = [ "alu"; "sha256_hv" ] in
  let rows =
    List.map
      (fun name ->
        let c = Circuits.find name in
        let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
        let nfaults = Array.length faults in
        (* best-of-3: the per-config runs are short enough that a single
           sample is at the mercy of the scheduler *)
        let run eval repr =
          let one () =
            Baselines.Serial.run
              ~config:
                {
                  Sim.Simulator.eval;
                  scheduler = Sim.Simulator.Levelized;
                  repr;
                }
              g w faults
          in
          let r = one () in
          let best = ref r.Faultsim.Fault.wall_time in
          for _ = 1 to 2 do
            let r' = one () in
            if r'.Faultsim.Fault.detected <> r.Faultsim.Fault.detected then
              failwith (Printf.sprintf "%s: nondeterministic verdicts" name);
            if r'.wall_time < !best then best := r'.wall_time
          done;
          (r, !best)
        in
        let style_rows =
          List.map
            (fun (sname, eval) ->
              let rb, bw = run eval Sim.Simulator.Boxed in
              let rf, fw = run eval Sim.Simulator.Flat in
              if rb.Faultsim.Fault.detected <> rf.Faultsim.Fault.detected then
                failwith
                  (Printf.sprintf "%s/%s: representations disagree" name sname);
              let speedup = bw /. fw in
              Format.fprintf ppf
                "  %-10s %-9s boxed %8.4f s  flat %8.4f s  speedup %5.2fx@."
                name sname bw fw speedup;
              (sname, bw, fw, speedup))
            styles
        in
        (name, nfaults, w.Faultsim.Workload.cycles, style_rows))
      circuits
  in
  let json =
    H.Jsonl.Obj
      [
        ("experiment", H.Jsonl.String "repr");
        ("scale", H.Jsonl.Float scale);
        ( "circuits",
          H.Jsonl.List
            (List.map
               (fun (name, nfaults, cycles, style_rows) ->
                 H.Jsonl.Obj
                   [
                     ("name", H.Jsonl.String name);
                     ("faults", H.Jsonl.Int nfaults);
                     ("cycles", H.Jsonl.Int cycles);
                     ( "styles",
                       H.Jsonl.List
                         (List.map
                            (fun (sname, bw, fw, speedup) ->
                              H.Jsonl.Obj
                                [
                                  ("style", H.Jsonl.String sname);
                                  ("boxed_wall_s", H.Jsonl.Float bw);
                                  ("flat_wall_s", H.Jsonl.Float fw);
                                  ( "flat_faults_per_sec",
                                    H.Jsonl.Float (float_of_int nfaults /. fw)
                                  );
                                  ("speedup_vs_boxed", H.Jsonl.Float speedup);
                                ])
                            style_rows) );
                   ])
               rows) );
      ]
  in
  let text = H.Jsonl.to_string json in
  ignore (H.Jsonl.parse text);
  H.Resilient.write_atomic out (fun oc ->
      output_string oc text;
      output_char oc '\n');
  Format.fprintf ppf "  json       %s@." out

(* --- Bechamel micro-benchmarks --- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* kernels *)
  let a64 = Bits.make 64 0x123456789ABCDEFL in
  let b64 = Bits.make 64 0xFEDCBA987654321L in
  let bits_add = Test.make ~name:"bits_add" (Staged.stage (fun () -> Bits.add a64 b64)) in
  let bits_mul = Test.make ~name:"bits_mul" (Staged.stage (fun () -> Bits.mul a64 b64)) in
  (* a representative expression under the three evaluation styles *)
  let expr =
    let s i = Expr.Sig i in
    Expr.Binop
      ( Expr.Xor,
        Expr.Binop
          ( Expr.Add,
            Expr.Binop (Expr.Mul, s 0, s 1),
            Expr.Mux
              ( Expr.Binop (Expr.Ltu, s 2, s 3),
                Expr.Binop (Expr.And, s 0, s 3),
                Expr.Unop (Expr.Not, s 1) ) ),
        Expr.Binop (Expr.Shru, s 2, Expr.Slice (s 3, 5, 0)) )
  in
  let values =
    [| a64; b64; Bits.make 64 42L; Bits.make 64 0xFFFFL |]
  in
  let reader =
    { Sim.Access.get = (fun i -> values.(i)); get_mem = (fun _ _ -> a64) }
  in
  let mem_size _ = 1 in
  let compiled = Sim.Compile.expr ~mem_size expr in
  let prog = Sim.Bytecode.compile ~mem_size expr in
  let eval_ast =
    Test.make ~name:"eval_ast"
      (Staged.stage (fun () -> Sim.Eval.eval ~mem_size reader expr))
  in
  let eval_closure =
    Test.make ~name:"eval_closure" (Staged.stage (fun () -> compiled reader))
  in
  let eval_bytecode =
    Test.make ~name:"eval_bytecode_4state"
      (Staged.stage (fun () -> Sim.Bytecode.eval prog reader))
  in
  (* behavioral execution vs the Algorithm-1 walk on the ALU main process *)
  let alu = Circuits.Alu64.build () in
  let body =
    (Array.to_list alu.Design.procs
    |> List.find (fun (p : Design.proc) -> p.pname = "alu_main"))
      .body
  in
  let cp = Sim.Compile.proc ~mem_size:(fun _ -> 1) body in
  let vals =
    Array.init (Design.num_signals alu) (fun i ->
        Bits.make (Design.signal_width alu i) (Int64.of_int (i * 77)))
  in
  let rd = { Sim.Access.get = (fun i -> vals.(i)); get_mem = (fun _ _ -> a64) } in
  let sink = ref (Bits.make 1 0L) in
  let wr =
    {
      Sim.Access.set_blocking = (fun _ v -> sink := v);
      set_nonblocking = (fun _ v -> sink := v);
      write_mem = (fun _ _ _ -> ());
    }
  in
  let record = Array.make (Array.length cp.Sim.Compile.cfg.Flow.Cfg.nodes) 0 in
  Sim.Compile.exec cp ~record rd wr;
  let exec_bn =
    Test.make ~name:"behavioral_exec"
      (Staged.stage (fun () -> Sim.Compile.exec cp rd wr))
  in
  let walk =
    Test.make ~name:"vdg_walk_algorithm1"
      (Staged.stage (fun () ->
           Flow.Vdg.redundant cp.Sim.Compile.vdg
             ~good_choice:(fun i -> record.(i))
             ~eval_good:(fun e -> Sim.Eval.eval ~mem_size:(fun _ -> 1) rd e)
             ~eval_fault:(fun e -> Sim.Eval.eval ~mem_size:(fun _ -> 1) rd e)
             ~visible:(fun _ -> false)
             ~mem_word_visible:(fun _ _ -> false)))
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        bits_add; bits_mul; eval_ast; eval_closure; eval_bytecode; exec_bn;
        walk;
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.fprintf ppf "Micro-benchmarks (ns/op):@.";
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Format.fprintf ppf "  %-28s %10.1f@." name est
      | _ -> Format.fprintf ppf "  %-28s (no estimate)@." name)
    results

let parse_jobs s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let () =
  let scale = ref 0.5 in
  let jobs = ref [ 1; 2; 4; 8 ] in
  let scaling_out = ref "BENCH_scaling.json" in
  let repr_out = ref "BENCH_repr.json" in
  let warmstart_out = ref "BENCH_warmstart.json" in
  let activation_out = ref "BENCH_activation.json" in
  let schedule_out = ref "BENCH_schedule.json" in
  let lanes_out = ref "BENCH_lanes.json" in
  let cmds = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "--scale" ->
          scale := float_of_string Sys.argv.(i + 1);
          parse (i + 2)
      | s when String.length s > 8 && String.sub s 0 8 = "--scale=" ->
          scale := float_of_string (String.sub s 8 (String.length s - 8));
          parse (i + 1)
      | "--jobs" ->
          jobs := parse_jobs Sys.argv.(i + 1);
          parse (i + 2)
      | s when String.length s > 7 && String.sub s 0 7 = "--jobs=" ->
          jobs := parse_jobs (String.sub s 7 (String.length s - 7));
          parse (i + 1)
      | "--scaling-out" ->
          scaling_out := Sys.argv.(i + 1);
          parse (i + 2)
      | "--repr-out" ->
          repr_out := Sys.argv.(i + 1);
          parse (i + 2)
      | "--warmstart-out" ->
          warmstart_out := Sys.argv.(i + 1);
          parse (i + 2)
      | "--activation-out" ->
          activation_out := Sys.argv.(i + 1);
          parse (i + 2)
      | "--schedule-out" ->
          schedule_out := Sys.argv.(i + 1);
          parse (i + 2)
      | "--lanes-out" ->
          lanes_out := Sys.argv.(i + 1);
          parse (i + 2)
      | cmd ->
          cmds := cmd :: !cmds;
          parse (i + 1)
  in
  (try parse 1
   with _ ->
     prerr_endline
       "usage: main \
        [tableN|figN|scaling|repr|warmstart|activation|schedule|lanes|micro] \
        [--scale S] [--jobs 1,2,4] [--scaling-out FILE] [--repr-out FILE] \
        [--warmstart-out FILE] [--activation-out FILE] [--schedule-out \
        FILE] [--lanes-out FILE]");
  let cmds = if !cmds = [] then [ "all" ] else List.rev !cmds in
  let scale = !scale in
  Format.fprintf ppf "ERASER reproduction harness (scale %.2f)@.@." scale;
  List.iter
    (fun cmd ->
      match cmd with
      | "table1" -> table1 ()
      | "table2" -> table2 ~scale
      | "table3" -> table3 ~scale
      | "fig1b" -> fig1b ~scale
      | "fig6" -> fig6 ~scale
      | "fig7" -> fig7 ~scale
      | "ablation" -> ablation ~scale
      | "resilience" -> resilience ~scale
      | "scaling" -> scaling ~scale ~jobs:!jobs ~out:!scaling_out
      | "repr" -> repr_bench ~scale ~out:!repr_out
      | "warmstart" -> warmstart ~scale ~jobs:!jobs ~out:!warmstart_out
      | "activation" -> activation ~scale ~jobs:!jobs ~out:!activation_out
      | "schedule" -> schedule ~scale ~jobs:!jobs ~out:!schedule_out
      | "lanes" -> lanes ~scale ~jobs:!jobs ~out:!lanes_out
      | "micro" -> micro ()
      | "all" ->
          table1 ();
          table2 ~scale;
          fig1b ~scale;
          fig6 ~scale;
          fig7 ~scale;
          table3 ~scale;
          ablation ~scale;
          resilience ~scale;
          scaling ~scale ~jobs:!jobs ~out:!scaling_out;
          repr_bench ~scale ~out:!repr_out;
          warmstart ~scale ~jobs:!jobs ~out:!warmstart_out;
          activation ~scale ~jobs:!jobs ~out:!activation_out;
          schedule ~scale ~jobs:!jobs ~out:!schedule_out;
          lanes ~scale ~jobs:!jobs ~out:!lanes_out;
          micro ()
      | other -> Format.fprintf ppf "unknown experiment %S@." other)
    cmds
