(* Validate a BENCH_scaling.json document (bench-smoke alias): parse it
   back through Harness.Jsonl and check the schema and the invariants the
   sweep guarantees — every circuit carries one point per requested worker
   count, the first point's speedup is 1.0, and the redundancy counters are
   identical across a circuit's points (parallelism must change no
   simulation work). *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: validate_scaling FILE" in
  let ic = open_in path in
  let line = try input_line ic with End_of_file -> fail "%s: empty" path in
  close_in ic;
  let doc = try J.parse line with J.Parse_error m -> fail "%s: %s" path m in
  if J.get_string "experiment" doc <> "scaling" then
    fail "%s: not a scaling document" path;
  let finite what v =
    if not (Float.is_finite v) then fail "%s: non-finite %s" path what;
    v
  in
  ignore (finite "scale" (J.get_float "scale" doc));
  let circuits = J.get_list "circuits" doc in
  if circuits = [] then fail "%s: no circuits" path;
  List.iter
    (fun c ->
      let name = J.get_string "name" c in
      if J.get_int "faults" c < 1 then fail "%s: no faults" name;
      ignore (J.get_int "cycles" c);
      let points = J.get_list "points" c in
      if points = [] then fail "%s: no points" name;
      let stats_key s =
        List.map
          (fun f -> J.get_int f s)
          [
            "bn_good"; "bn_fault_exec"; "bn_skipped_explicit";
            "bn_skipped_implicit"; "rtl_good_eval"; "rtl_fault_eval";
          ]
        (* warm-start counters: optional, so documents emitted before the
           good-trace work still validate *)
        @ List.map
            (fun f ->
              match J.member f s with Some (J.Int v) -> v | _ -> 0)
            [ "good_cycles_skipped"; "goodtrace_captures" ]
      in
      let first_stats = ref None in
      List.iteri
        (fun i p ->
          if J.get_int "jobs" p < 1 then fail "%s: bad jobs" name;
          if finite "wall_s" (J.get_float "wall_s" p) < 0.0 then
            fail "%s: negative wall" name;
          ignore (finite "faults_per_sec" (J.get_float "faults_per_sec" p));
          let speedup = finite "speedup" (J.get_float "speedup" p) in
          if i = 0 && speedup <> 1.0 then
            fail "%s: first point's speedup is %g, expected 1.0" name speedup;
          let s =
            match J.member "stats" p with
            | Some s -> stats_key s
            | None -> fail "%s: point without stats" name
          in
          match !first_stats with
          | None -> first_stats := Some s
          | Some s0 ->
              if s <> s0 then
                fail "%s: counters differ across worker counts" name)
        points)
    circuits;
  Printf.printf "bench-smoke: %s ok (%d circuits)\n" path
    (List.length circuits)
