(* Validate the observability artifacts of a traced smoke campaign
   (bench-smoke alias): the Chrome trace_event document must be well-formed
   and contain the span families the engine promises, and the metrics
   document must parse with finite values and the core engine metrics
   present. *)
module J = Harness.Jsonl

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  let text = String.trim (read_all path) in
  if text = "" then fail "%s: empty" path;
  try J.parse text with J.Parse_error m -> fail "%s: %s" path m

let check_trace path =
  let doc = parse path in
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> fail "%s: no traceEvents array" path
  in
  if events = [] then fail "%s: empty trace" path;
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i e ->
      let name = J.get_string "name" e in
      if name = "" then fail "%s: event %d has an empty name" path i;
      let ph = J.get_string "ph" e in
      if not (List.mem ph [ "X"; "C"; "i" ]) then
        fail "%s: event %d has unknown phase %S" path i ph;
      if J.get_float "ts" e < 0.0 then
        fail "%s: event %d has negative timestamp" path i;
      ignore (J.get_int "pid" e);
      ignore (J.get_int "tid" e);
      if ph = "X" && J.get_float "dur" e < 0.0 then
        fail "%s: event %d has negative duration" path i;
      Hashtbl.replace seen name ())
    events;
  List.iter
    (fun required ->
      if not (Hashtbl.mem seen required) then
        fail "%s: no %S span recorded" path required)
    [ "fault_sim_run"; "good_sim"; "bn_eval"; "vdg_walk" ];
  List.length events

let check_metrics path =
  let doc = parse path in
  let metrics =
    match J.member "metrics" doc with
    | Some (J.Obj kvs) -> kvs
    | _ -> fail "%s: no metrics object" path
  in
  if metrics = [] then fail "%s: empty metrics" path;
  let finite name v =
    if not (Float.is_finite v) then fail "%s: %s is not finite" path name
  in
  List.iter
    (fun (name, m) ->
      match J.get_string "type" m with
      | "counter" ->
          if J.get_int "value" m < 0 then fail "%s: %s negative" path name
      | "histogram" ->
          if J.get_int "count" m < 0 then fail "%s: %s negative" path name;
          finite name (J.get_float "sum" m);
          finite name (J.get_float "max" m);
          List.iter
            (fun b -> if J.get_int "count" b < 0 then fail "%s: %s bucket" path name)
            (J.get_list "buckets" m)
      | k -> fail "%s: %s has unknown type %S" path name k)
    metrics;
  let has name = List.mem_assoc name metrics in
  if not (has "engine.bn_fault_exec") then
    fail "%s: counter engine.bn_fault_exec missing" path;
  if not (has "engine.vdg_walk_depth") then
    fail "%s: histogram engine.vdg_walk_depth missing" path;
  List.length metrics

let () =
  if Array.length Sys.argv < 3 then
    fail "usage: validate_trace TRACE_FILE METRICS_FILE";
  let nev = check_trace Sys.argv.(1) in
  let nm = check_metrics Sys.argv.(2) in
  Printf.printf "bench-smoke: %s ok (%d events), %s ok (%d metrics)\n"
    Sys.argv.(1) nev Sys.argv.(2) nm
