(* Redundancy analysis: reproduce, for one circuit, the measurement that
   motivates the paper (Fig. 1) — how much of the behavioral-node work in a
   fault campaign is redundant, how much of that redundancy is invisible to
   input comparison (implicit), and what eliminating it buys.

     dune exec examples/redundancy_analysis.exe -- sha256_hv 0.25 *)

open Faultsim
module H = Harness

let () =
  let name = try Sys.argv.(1) with _ -> "sha256_hv" in
  let scale = try float_of_string Sys.argv.(2) with _ -> 0.25 in
  let c = Circuits.find name in
  let _, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
  Printf.printf "%s: %d cycles, %d faults\n\n" c.Circuits.Bench_circuit.name
    w.Workload.cycles (Array.length faults);
  (* instrumented Eraser run: the redundancy census *)
  let r = H.Campaign.run ~instrument:true H.Campaign.Eraser g w faults in
  let s = r.Fault.stats in
  let total = Stats.total_bn_executions s in
  Printf.printf "behavioral-node time share        %38.0f%%\n"
    (Stats.bn_time_pct s);
  Printf.printf "faulty behavioral executions without elimination %12d\n" total;
  Printf.printf "  executed                        %12d (%5.1f%%)\n"
    s.Stats.bn_fault_exec
    (100.0 *. float_of_int s.Stats.bn_fault_exec /. float_of_int total);
  Printf.printf "  explicit redundancy (inputs unchanged)  %12d (%5.1f%%)\n"
    s.Stats.bn_skipped_explicit (Stats.explicit_pct s);
  Printf.printf "  implicit redundancy (Algorithm 1)       %12d (%5.1f%%)\n"
    s.Stats.bn_skipped_implicit (Stats.implicit_pct s);
  (* where the executions happen, per behavioral node *)
  Printf.printf "\nper behavioral node (Eraser):\n";
  Array.iter
    (fun (r : Stats.proc_row) ->
      if r.pr_exec + r.pr_impl + r.pr_expl > 0 then
        Printf.printf
          "  %-16s executed %8d   implicit skips %8d   explicit skips %8d\n"
          r.pr_name r.pr_exec r.pr_impl r.pr_expl)
    s.Stats.per_proc;
  (* coverage growth over the stimulus, from the recorded detection cycles *)
  let cycles = w.Workload.cycles in
  let total = float_of_int (Array.length faults) in
  Printf.printf "\ncoverage growth:\n";
  List.iter
    (fun frac ->
      let upto = frac * cycles / 100 in
      let det =
        Array.fold_left
          (fun acc c -> if c >= 0 && c <= upto then acc + 1 else acc)
          0 r.Fault.detection_cycle
      in
      Printf.printf "  after %4d cycles (%3d%%): %6.2f%%\n" upto frac
        (100.0 *. float_of_int det /. total))
    [ 5; 10; 25; 50; 100 ];
  (* what the elimination buys: the three ablation engines *)
  Printf.printf "\nablation (same campaign):\n";
  let times =
    List.map
      (fun e ->
        let r = H.Campaign.run e g w faults in
        (e, r.Fault.wall_time))
      [ H.Campaign.Eraser_mm; H.Campaign.Eraser_m; H.Campaign.Eraser ]
  in
  let base = List.assoc H.Campaign.Eraser_mm times in
  List.iter
    (fun (e, t) ->
      Printf.printf "  %-9s %8.3f s  %5.2fx\n" (H.Campaign.engine_name e) t
        (base /. t))
    times
