(* Functional-safety sign-off scenario (the paper's motivating use case,
   ISO 26262): run stuck-at campaigns on the automotive-flavoured blocks of
   the benchmark suite — the bus controller and two processors — and print
   a sign-off summary: coverage per block, diagnostic-coverage class, and
   the residual (undetected) fault sites an engineer would review.

     dune exec examples/safety_signoff.exe -- [scale] *)

open Faultsim
module H = Harness

let classify coverage =
  (* the ASIL-style diagnostic-coverage bands of ISO 26262 part 5 *)
  if coverage >= 99.0 then "ASIL D band (>= 99%)"
  else if coverage >= 97.0 then "ASIL C band (>= 97%)"
  else if coverage >= 90.0 then "ASIL B band (>= 90%)"
  else "below ASIL B: needs more tests or safety mechanisms"

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.25 in
  let blocks = [ "apb"; "sodor"; "mips" ] in
  Printf.printf "Functional-safety fault campaign (scale %.2f)\n\n" scale;
  let residuals = ref [] in
  List.iter
    (fun name ->
      let c = Circuits.find name in
      let design, g, w, faults = Circuits.Bench_circuit.instantiate c ~scale in
      let verdicts = Classify.classify g faults in
      let t0 = Unix.gettimeofday () in
      let r = H.Campaign.run H.Campaign.Eraser g w faults in
      let dt = Unix.gettimeofday () -. t0 in
      let adjusted =
        (* every block here has testable faults; 0 would only appear on an
           empty campaign and still reads as "below ASIL B" *)
        Option.value ~default:0.0 (Classify.adjusted_coverage verdicts r)
      in
      Printf.printf
        "%-12s %5d faults  %6.2f%% raw  %6.2f%% adjusted  latency %5.1f  %-28s %.3fs\n"
        c.paper_name (Array.length faults) r.Fault.coverage_pct adjusted
        (Fault.mean_detection_latency r)
        (classify adjusted) dt;
      Array.iteri
        (fun i det ->
          if not det then
            residuals :=
              Printf.sprintf "  %-12s %s" name
                (Fault.describe design faults.(i))
              :: !residuals)
        r.Fault.detected)
    blocks;
  Printf.printf "\nResidual faults to review (%d):\n"
    (List.length !residuals);
  List.iter print_endline (List.rev !residuals |> List.filteri (fun i _ -> i < 25));
  if List.length !residuals > 25 then
    Printf.printf "  ... and %d more\n" (List.length !residuals - 25)
